#include "shard/map.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdep::shard {

namespace {
constexpr std::uint8_t kMagic[4] = {'S', 'M', 'A', 'P'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint64_t kKeySpace = 1ULL << 32;
}  // namespace

std::uint32_t shard_hash(std::string_view key) {
  return static_cast<std::uint32_t>(
      fnv1a({reinterpret_cast<const std::uint8_t*>(key.data()), key.size()}));
}

std::string KeyRange::str() const {
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

ShardMap ShardMap::uniform(int shards, std::uint64_t first_group,
                           const ShardPolicy& policy, std::uint64_t epoch) {
  if (shards < 1) throw std::invalid_argument("shard count must be >= 1");
  ShardMap map;
  map.epoch_ = epoch;
  for (int i = 0; i < shards; ++i) {
    const std::uint64_t lo = kKeySpace * static_cast<std::uint64_t>(i) /
                             static_cast<std::uint64_t>(shards);
    const std::uint64_t hi = kKeySpace * (static_cast<std::uint64_t>(i) + 1) /
                                 static_cast<std::uint64_t>(shards) -
                             1;
    ShardEntry e;
    e.shard = static_cast<std::uint32_t>(i);
    e.range = {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
    e.group = GroupId{first_group + static_cast<std::uint64_t>(i)};
    e.policy = policy;
    map.entries_.push_back(e);
  }
  return map;
}

const ShardEntry* ShardMap::lookup(std::uint32_t hash) const {
  // First entry with range.lo > hash; its predecessor is the candidate.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), hash,
      [](std::uint32_t h, const ShardEntry& e) { return h < e.range.lo; });
  if (it == entries_.begin()) return nullptr;
  const ShardEntry& e = *std::prev(it);
  return e.range.contains(hash) ? &e : nullptr;
}

const ShardEntry* ShardMap::find_shard(std::uint32_t shard_id) const {
  for (const auto& e : entries_) {
    if (e.shard == shard_id) return &e;
  }
  return nullptr;
}

std::vector<KeyRange> ShardMap::ranges_of(GroupId group) const {
  std::vector<KeyRange> out;
  for (const auto& e : entries_) {
    if (e.group == group) out.push_back(e.range);
  }
  return out;
}

std::uint32_t ShardMap::max_shard_id() const {
  std::uint32_t m = 0;
  for (const auto& e : entries_) m = std::max(m, e.shard);
  return m;
}

bool ShardMap::validate(std::string* why) const {
  auto fail = [why](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (entries_.empty()) return fail("empty map");
  if (entries_.front().range.lo != 0) {
    return fail("cover starts at " + std::to_string(entries_.front().range.lo));
  }
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const ShardEntry& e = entries_[i];
    if (e.range.lo > e.range.hi) return fail("inverted range " + e.range.str());
    if (i > 0) {
      const KeyRange& prev = entries_[i - 1].range;
      if (prev.hi == 0xffffffffu || prev.hi + 1 != e.range.lo) {
        return fail("gap/overlap between " + prev.str() + " and " + e.range.str());
      }
    }
    ids.push_back(e.shard);
  }
  if (entries_.back().range.hi != 0xffffffffu) {
    return fail("cover ends at " + std::to_string(entries_.back().range.hi));
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    return fail("duplicate shard id");
  }
  return true;
}

ShardMap ShardMap::split(std::uint32_t shard_id, std::uint32_t split_point,
                         GroupId target, const ShardPolicy& policy) const {
  ShardMap next = *this;
  next.epoch_ = epoch_ + 1;
  for (auto& e : next.entries_) {
    if (e.shard != shard_id) continue;
    if (!(e.range.lo < split_point && split_point <= e.range.hi)) {
      throw std::invalid_argument("split point " + std::to_string(split_point) +
                                  " would leave an empty side of " + e.range.str());
    }
    ShardEntry upper;
    upper.shard = max_shard_id() + 1;
    upper.range = {split_point, e.range.hi};
    upper.group = target;
    upper.policy = policy;
    e.range.hi = split_point - 1;
    // Insert after `e` to keep the lo-order sort.
    auto pos = std::upper_bound(
        next.entries_.begin(), next.entries_.end(), upper.range.lo,
        [](std::uint32_t lo, const ShardEntry& x) { return lo < x.range.lo; });
    next.entries_.insert(pos, upper);
    return next;
  }
  throw std::invalid_argument("unknown shard id " + std::to_string(shard_id));
}

ShardMap ShardMap::reassign(std::uint32_t shard_id, GroupId target) const {
  ShardMap next = *this;
  next.epoch_ = epoch_ + 1;
  for (auto& e : next.entries_) {
    if (e.shard == shard_id) {
      e.group = target;
      return next;
    }
  }
  throw std::invalid_argument("unknown shard id " + std::to_string(shard_id));
}

Bytes ShardMap::encode() const {
  ByteWriter w;
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(kVersion);
  w.u64(epoch_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w.u32(e.shard);
    w.u32(e.range.lo);
    w.u32(e.range.hi);
    w.u64(e.group.value());
    w.u8(e.policy.style);
    w.u8(e.policy.replicas);
    w.u32(e.policy.checkpoint_every_requests);
    w.u32(e.policy.checkpoint_anchor_interval);
  }
  return std::move(w).take();
}

ShardMap ShardMap::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  for (std::uint8_t b : kMagic) {
    if (r.u8() != b) throw r.error("bad shard map magic");
  }
  if (const std::uint8_t v = r.u8(); v != kVersion) {
    throw r.error("unsupported shard map version " + std::to_string(v));
  }
  ShardMap map;
  map.epoch_ = r.u64();
  const std::uint32_t n = r.u32();
  map.entries_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardEntry e;
    e.shard = r.u32();
    e.range.lo = r.u32();
    e.range.hi = r.u32();
    e.group = GroupId{r.u64()};
    e.policy.style = r.u8();
    e.policy.replicas = r.u8();
    e.policy.checkpoint_every_requests = r.u32();
    e.policy.checkpoint_anchor_interval = r.u32();
    map.entries_.push_back(e);
  }
  if (r.remaining() != 0) throw r.error("trailing bytes after shard map");
  return map;
}

}  // namespace vdep::shard
