#include "shard/migration.hpp"

#include "orb/cdr.hpp"
#include "sim/kernel.hpp"

namespace vdep::shard {

struct MigrationController::Job {
  bool is_split = true;
  std::uint32_t shard_id = 0;
  std::uint32_t split_point = 0;
  GroupId target;
  ShardPolicy policy;
  Done done;

  Record rec;
  ShardMap next;
  Bytes bundle;
};

MigrationController::MigrationController(net::Network& network, gcs::Daemon& daemon,
                                         sim::Kernel& kernel, ProcessId pid,
                                         NodeId host, Params params,
                                         monitor::MetricsRegistry* metrics)
    : kernel_(kernel),
      params_(params),
      metrics_(metrics),
      process_(kernel, pid, host, "migrator@" + network.host_name(host)),
      orb_(network, process_) {
  auto coordinator = std::make_unique<replication::ClientCoordinator>(
      network, daemon, process_, params_.coordinator);
  orb_.use_transport(std::move(coordinator));
}

MigrationController::~MigrationController() = default;

orb::ObjectRef MigrationController::group_ref(GroupId group) const {
  orb::ObjectRef ref;
  ref.object_key = params_.object_key;
  ref.group = orb::GroupProfile{group};
  return ref;
}

void MigrationController::split(std::uint32_t shard_id, std::uint32_t split_point,
                                GroupId target_group, const ShardPolicy& policy,
                                Done done) {
  auto job = std::make_shared<Job>();
  job->is_split = true;
  job->shard_id = shard_id;
  job->split_point = split_point;
  job->target = target_group;
  job->policy = policy;
  job->done = std::move(done);
  queue_.push_back(std::move(job));
  pump();
}

void MigrationController::move(std::uint32_t shard_id, GroupId target_group,
                               Done done) {
  auto job = std::make_shared<Job>();
  job->is_split = false;
  job->shard_id = shard_id;
  job->target = target_group;
  job->done = std::move(done);
  queue_.push_back(std::move(job));
  pump();
}

void MigrationController::pump() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  auto job = queue_.front();
  queue_.pop_front();
  run(std::move(job));
}

void MigrationController::finish(std::shared_ptr<Job> job, bool success,
                                 const std::string& error) {
  job->rec.success = success;
  job->rec.error = error;
  job->rec.finished = kernel_.now();
  if (success) bytes_moved_total_ += job->rec.bytes_moved;
  if (success && metrics_ != nullptr) {
    metrics_->add("shard.migrations");
    metrics_->add("shard.map_epoch_bumps");
    metrics_->add("shard.bytes_moved", job->rec.bytes_moved);
    metrics_->set_gauge("shard.map_epoch",
                        static_cast<double>(job->rec.committed_epoch));
  }
  if (!success && metrics_ != nullptr) metrics_->add("shard.migrations_failed");
  history_.push_back(job->rec);
  if (job->done) job->done(history_.back());
  busy_ = false;
  pump();
}

// One protocol step: send, retry on transport failure (the coordinator
// already retransmits through failovers; this guards the give-up path), and
// hand the app-level status to the continuation.
void MigrationController::step(std::shared_ptr<Job> job, const std::string& what,
                               const orb::ObjectRef& ref,
                               const std::string& operation, Bytes args,
                               std::function<void(ShardStatus, Bytes)> on_ok) {
  auto attempts = std::make_shared<int>(0);
  auto try_once = std::make_shared<std::function<void()>>();
  // The closure refers to itself only through a weak_ptr — a strong self
  // capture would cycle and leak the whole job chain. The in-flight reply
  // callback and any posted retry hold the strong reference instead.
  std::weak_ptr<std::function<void()>> weak = try_once;
  *try_once = [this, job, what, ref, operation, args, on_ok, attempts, weak] {
    auto self = weak.lock();
    ++*attempts;
    orb_.invoke(ref, operation, args,
                [this, job, what, on_ok, attempts, self](
                    orb::ReplyStatus status, Bytes body) {
                  if (status != orb::ReplyStatus::kNoException) {
                    if (*attempts >= params_.max_step_attempts) {
                      finish(job, false, what + ": no reply");
                      return;
                    }
                    kernel_.post(params_.step_retry, [self] { (*self)(); });
                    return;
                  }
                  orb::CdrReader r(body);
                  const auto shard_status = static_cast<ShardStatus>(r.ulong());
                  on_ok(shard_status, std::move(body));
                });
  };
  (*try_once)();
}

void MigrationController::run(std::shared_ptr<Job> job) {
  job->rec.id = next_migration_id_++;
  job->rec.started = kernel_.now();
  job->rec.source_shard = job->shard_id;
  job->rec.to = job->target;

  // 1. Read the authoritative map and compute the successor.
  step(job, "dir.get", group_ref(params_.directory_group), "dir.get", {},
       [this, job](ShardStatus status, Bytes body) {
         if (status != ShardStatus::kOk) {
           finish(job, false, "dir.get: " + to_string(status));
           return;
         }
         auto reply = DirectoryServant::decode_get_reply(body);
         const ShardMap& current = reply.map;
         const ShardEntry* entry = current.find_shard(job->shard_id);
         if (entry == nullptr) {
           finish(job, false, "unknown shard " + std::to_string(job->shard_id));
           return;
         }
         if (entry->group == job->target) {
           finish(job, false, "target group already owns the shard");
           return;
         }
         job->rec.from = entry->group;
         try {
           if (job->is_split) {
             job->next = current.split(job->shard_id, job->split_point,
                                       job->target, job->policy);
             job->rec.moved = {job->split_point, entry->range.hi};
             job->rec.new_shard = current.max_shard_id() + 1;
           } else {
             job->next = current.reassign(job->shard_id, job->target);
             job->rec.moved = entry->range;
             job->rec.new_shard = job->shard_id;
           }
         } catch (const std::invalid_argument& e) {
           finish(job, false, e.what());
           return;
         }

         // 2. Freeze the moving range on the source group.
         orb::CdrWriter freeze;
         freeze.ulonglong(job->rec.id);
         freeze.ulong(job->rec.moved.lo);
         freeze.ulong(job->rec.moved.hi);
         freeze.ulonglong(job->next.epoch());
         freeze.ulonglong(job->target.value());
         step(job, "freeze", group_ref(job->rec.from), "shard.freeze",
              std::move(freeze).take(), [this, job](ShardStatus s, Bytes) {
                if (s != ShardStatus::kOk) {
                  finish(job, false, "freeze: " + to_string(s));
                  return;
                }

                // 3. Donate: the source cuts the encode-once bundle.
                orb::CdrWriter donate;
                donate.ulonglong(job->rec.id);
                step(job, "donate", group_ref(job->rec.from), "shard.donate",
                     std::move(donate).take(),
                     [this, job](ShardStatus s2, Bytes body2) {
                       if (s2 != ShardStatus::kOk) {
                         finish(job, false, "donate: " + to_string(s2));
                         return;
                       }
                       orb::CdrReader r(body2);
                       r.ulong();  // status, already checked
                       job->bundle = r.octets();
                       job->rec.bytes_moved = job->bundle.size();

                       // 4. Install on the target group.
                       orb::CdrWriter install;
                       install.ulonglong(job->rec.id);
                       install.ulong(job->rec.moved.lo);
                       install.ulong(job->rec.moved.hi);
                       install.ulonglong(job->next.epoch());
                       install.octets(job->bundle);
                       step(job, "install", group_ref(job->target),
                            "shard.install", std::move(install).take(),
                            [this, job](ShardStatus s3, Bytes) {
                              if (s3 != ShardStatus::kOk) {
                                finish(job, false, "install: " + to_string(s3));
                                return;
                              }

                              // 5. Commit the successor map (AGREED within
                              // the directory group).
                              step(job, "commit",
                                   group_ref(params_.directory_group),
                                   "dir.commit",
                                   DirectoryServant::encode_commit(job->next),
                                   [this, job](ShardStatus s4, Bytes) {
                                     if (s4 != ShardStatus::kOk) {
                                       finish(job, false,
                                              "commit: " + to_string(s4));
                                       return;
                                     }
                                     job->rec.committed = kernel_.now();
                                     job->rec.committed_epoch = job->next.epoch();
                                     job->rec.committed_map = job->next;

                                     // 6. Release the moved keys at the source.
                                     orb::CdrWriter release;
                                     release.ulonglong(job->rec.id);
                                     step(job, "release", group_ref(job->rec.from),
                                          "shard.release",
                                          std::move(release).take(),
                                          [this, job](ShardStatus s5, Bytes) {
                                            if (s5 != ShardStatus::kOk) {
                                              finish(job, false,
                                                     "release: " + to_string(s5));
                                              return;
                                            }
                                            finish(job, true, {});
                                          });
                                   });
                            });
                     });
              });
       });
}

}  // namespace vdep::shard
