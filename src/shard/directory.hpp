// DirectoryServant — the shard map as a replicated object.
//
// The directory is an ordinary Checkpointable replicated by its own group:
// commits arrive as AGREED-ordered requests (so the map epoch advances
// atomically across the directory replicas), failover and state transfer
// come from the replicator for free, and clients read the map with a plain
// "dir.get". Epoch fencing for racing reconfigurators is the commit rule: a
// proposed map is accepted iff its epoch is exactly current+1 — a
// reconfigurator that lost the race gets kStaleEpoch, refetches, and
// recomputes against the winner's map.
//
// Operations:
//   "dir.get"     in: -                   out: {ulong status; octets map}
//   "dir.commit"  in: {octets map}        out: {ulong status; ulonglong epoch}
#pragma once

#include "shard/map.hpp"
#include "shard/shard_servant.hpp"

namespace vdep::shard {

class DirectoryServant final : public replication::Checkpointable {
 public:
  struct Config {
    SimTime op_time = usec(5);
  };

  DirectoryServant() = default;  // blank: a joiner restores by state transfer
  explicit DirectoryServant(ShardMap initial);
  DirectoryServant(ShardMap initial, Config config);

  Result invoke(const std::string& operation, const Bytes& args) override;

  [[nodiscard]] Bytes snapshot() const override { return map_.encode(); }
  void restore(std::span<const std::uint8_t> snapshot) override {
    map_ = ShardMap::decode(snapshot);
  }
  [[nodiscard]] std::size_t state_size() const override {
    return map_.encode().size();
  }
  [[nodiscard]] std::uint64_t state_digest() const override {
    return fnv1a(map_.encode());
  }

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t commits() const { return commits_; }

  // --- client-side helpers ---------------------------------------------------
  static Bytes encode_commit(const ShardMap& map);
  struct GetReply {
    ShardStatus status = ShardStatus::kOk;
    ShardMap map;
  };
  static GetReply decode_get_reply(const Bytes& body);
  static ShardStatus decode_commit_reply(const Bytes& body);

 private:
  Config config_;
  ShardMap map_;
  std::uint64_t commits_ = 0;
};

}  // namespace vdep::shard
