#include "shard/directory.hpp"

#include "orb/cdr.hpp"
#include "util/assert.hpp"

namespace vdep::shard {

DirectoryServant::DirectoryServant(ShardMap initial)
    : DirectoryServant(std::move(initial), Config()) {}

DirectoryServant::DirectoryServant(ShardMap initial, Config config)
    : config_(config), map_(std::move(initial)) {
  std::string why;
  VDEP_ASSERT_MSG(map_.validate(&why), "initial shard map invalid");
  (void)why;
}

DirectoryServant::Result DirectoryServant::invoke(const std::string& operation,
                                                  const Bytes& args) {
  Result result;
  result.cpu_time = config_.op_time;
  orb::CdrWriter w;

  if (operation == "dir.get") {
    w.ulong(static_cast<std::uint32_t>(ShardStatus::kOk));
    w.octets(map_.encode());
    result.output = std::move(w).take();
    return result;
  }

  if (operation == "dir.commit") {
    orb::CdrReader r(args);
    const Bytes encoded = r.octets();
    ShardMap proposed = ShardMap::decode(encoded);
    ShardStatus status = ShardStatus::kOk;
    std::string why;
    if (!proposed.validate(&why)) {
      status = ShardStatus::kBadRequest;
    } else if (proposed.epoch() == map_.epoch() && proposed == map_) {
      // Retransmitted commit of the map already in force: idempotent accept.
    } else if (proposed.epoch() != map_.epoch() + 1) {
      status = ShardStatus::kStaleEpoch;  // lost a reconfiguration race
    } else {
      map_ = std::move(proposed);
      ++commits_;
    }
    w.ulong(static_cast<std::uint32_t>(status));
    w.ulonglong(map_.epoch());
    result.output = std::move(w).take();
    return result;
  }

  w.ulong(static_cast<std::uint32_t>(ShardStatus::kBadRequest));
  w.ulonglong(map_.epoch());
  result.output = std::move(w).take();
  return result;
}

Bytes DirectoryServant::encode_commit(const ShardMap& map) {
  orb::CdrWriter w;
  w.octets(map.encode());
  return std::move(w).take();
}

DirectoryServant::GetReply DirectoryServant::decode_get_reply(const Bytes& body) {
  orb::CdrReader r(body);
  GetReply reply;
  reply.status = static_cast<ShardStatus>(r.ulong());
  if (reply.status == ShardStatus::kOk) {
    const Bytes encoded = r.octets();
    reply.map = ShardMap::decode(encoded);
  }
  return reply;
}

ShardStatus DirectoryServant::decode_commit_reply(const Bytes& body) {
  orb::CdrReader r(body);
  return static_cast<ShardStatus>(r.ulong());
}

}  // namespace vdep::shard
