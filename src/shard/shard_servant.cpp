#include "shard/shard_servant.hpp"

#include <algorithm>

#include "orb/cdr.hpp"
#include "replication/types.hpp"

namespace vdep::shard {

namespace {

SimTime bundle_cpu(std::size_t bytes, double bytes_per_sec) {
  return usec_f(static_cast<double>(bytes) / bytes_per_sec * 1e6);
}

// The donated range as flat (key, value) pairs — the app_state of the
// bundle's anchor checkpoint.
Bytes encode_submap(const std::map<std::string, std::string>& items, KeyRange range) {
  std::uint32_t count = 0;
  for (const auto& [k, v] : items) {
    if (range.contains(shard_hash(k))) ++count;
  }
  ByteWriter w;
  w.u32(count);
  for (const auto& [k, v] : items) {
    if (!range.contains(shard_hash(k))) continue;
    w.str(k);
    w.str(v);
  }
  return std::move(w).take();
}

}  // namespace

std::string to_string(ShardStatus status) {
  switch (status) {
    case ShardStatus::kOk: return "ok";
    case ShardStatus::kWrongShard: return "wrong_shard";
    case ShardStatus::kFrozen: return "frozen";
    case ShardStatus::kStaleEpoch: return "stale_epoch";
    case ShardStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

ShardServant::ShardServant(Config config, std::vector<KeyRange> owned,
                           std::uint64_t fence_epoch)
    : config_(config), inner_(config.kv), fence_epoch_(fence_epoch),
      owned_(std::move(owned)) {
  std::sort(owned_.begin(), owned_.end(),
            [](const KeyRange& a, const KeyRange& b) { return a.lo < b.lo; });
}

bool ShardServant::owns(std::uint32_t hash) const {
  for (const auto& r : owned_) {
    if (r.contains(hash)) return true;
  }
  return false;
}

std::size_t ShardServant::stray_keys() const {
  std::size_t n = 0;
  for (const auto& [k, v] : inner_.items()) {
    if (!owns(shard_hash(k))) ++n;
  }
  return n;
}

ShardServant::Result ShardServant::status_reply(ShardStatus status, SimTime cpu) {
  orb::CdrWriter w;
  w.ulong(static_cast<std::uint32_t>(status));
  Result result;
  result.output = std::move(w).take();
  result.cpu_time = cpu;
  return result;
}

ShardServant::Result ShardServant::invoke(const std::string& operation,
                                          const Bytes& args) {
  if (operation.rfind("shard.", 0) == 0) return control(operation, args);

  const bool needs_value = operation == "put" || operation == "append";
  const bool known = needs_value || operation == "get" || operation == "erase";
  if (!known) return status_reply(ShardStatus::kBadRequest, config_.route_check_time);

  orb::CdrReader r(args);
  r.ulonglong();  // client's cached map epoch — diagnostic; fencing is by ownership
  const std::string key = r.string();
  const std::string value = needs_value ? r.string() : std::string{};

  const std::uint32_t h = shard_hash(key);
  if (frozen_ && frozen_->range.contains(h)) {
    return status_reply(ShardStatus::kFrozen, config_.route_check_time);
  }
  if (!owns(h)) {
    return status_reply(ShardStatus::kWrongShard, config_.route_check_time);
  }

  Bytes inner_args;
  if (operation == "put") {
    inner_args = app::KvStoreServant::encode_put(key, value);
  } else if (operation == "append") {
    inner_args = app::KvStoreServant::encode_append(key, value);
  } else {
    inner_args = app::KvStoreServant::encode_key(key);
  }
  Result inner = inner_.invoke(operation, inner_args);
  if (!inner.ok) return inner;

  orb::CdrWriter w;
  w.ulong(static_cast<std::uint32_t>(ShardStatus::kOk));
  w.octets(inner.output);
  Result result;
  result.output = std::move(w).take();
  result.cpu_time = config_.route_check_time + inner.cpu_time;
  return result;
}

ShardServant::Result ShardServant::control(const std::string& operation,
                                           const Bytes& args) {
  orb::CdrReader r(args);
  if (operation == "shard.freeze") {
    Migration m;
    m.id = r.ulonglong();
    m.range.lo = r.ulong();
    m.range.hi = r.ulong();
    m.post_epoch = r.ulonglong();
    m.target = GroupId{r.ulonglong()};
    return freeze(m);
  }
  if (operation == "shard.donate") return donate(r.ulonglong());
  if (operation == "shard.install") {
    const std::uint64_t id = r.ulonglong();
    KeyRange range;
    range.lo = r.ulong();
    range.hi = r.ulong();
    const std::uint64_t post_epoch = r.ulonglong();
    const Bytes bundle = r.octets();
    return install(id, range, post_epoch, bundle);
  }
  if (operation == "shard.release") return release(r.ulonglong());
  return status_reply(ShardStatus::kBadRequest, config_.route_check_time);
}

ShardServant::Result ShardServant::freeze(const Migration& m) {
  if (done_migrations_.count(m.id) != 0 || (frozen_ && frozen_->id == m.id)) {
    return status_reply(ShardStatus::kOk, config_.route_check_time);  // duplicate
  }
  if (frozen_) {
    // One outbound migration at a time; the controller serializes them.
    return status_reply(ShardStatus::kBadRequest, config_.route_check_time);
  }
  // The range must be entirely owned here.
  std::uint64_t covered = 0;
  for (const auto& o : owned_) {
    const std::uint32_t lo = std::max(o.lo, m.range.lo);
    const std::uint32_t hi = std::min(o.hi, m.range.hi);
    if (lo <= hi) covered += static_cast<std::uint64_t>(hi) - lo + 1;
  }
  if (covered != m.range.width()) {
    return status_reply(ShardStatus::kWrongShard, config_.route_check_time);
  }
  frozen_ = m;
  return status_reply(ShardStatus::kOk, config_.route_check_time);
}

ShardServant::Result ShardServant::donate(std::uint64_t id) {
  if (!frozen_ || frozen_->id != id) {
    return status_reply(ShardStatus::kBadRequest, config_.route_check_time);
  }
  // Encode once: the frozen range as the anchor of a StateTransferMsg, the
  // same bundle format a joiner receives. The range cannot mutate while
  // frozen, so this cut is exact regardless of when the controller reads it.
  replication::CheckpointMsg anchor;
  anchor.kind = replication::CheckpointMsg::Kind::kFull;
  anchor.checkpoint_id = id;
  anchor.app_state = Payload(encode_submap(inner_.items(), frozen_->range));
  replication::StateTransferMsg bundle;
  bundle.anchor = Payload(anchor.encode());
  Bytes encoded = bundle.encode();

  const SimTime cpu = config_.route_check_time +
                      bundle_cpu(encoded.size(), config_.bundle_bytes_per_sec);
  orb::CdrWriter w;
  w.ulong(static_cast<std::uint32_t>(ShardStatus::kOk));
  w.octets(encoded);
  Result result;
  result.output = std::move(w).take();
  result.cpu_time = cpu;
  return result;
}

ShardServant::Result ShardServant::install(std::uint64_t id, KeyRange range,
                                           std::uint64_t post_epoch,
                                           const Bytes& bundle) {
  if (done_migrations_.count(id) != 0) {
    return status_reply(ShardStatus::kOk, config_.route_check_time);  // duplicate
  }
  SimTime cpu = config_.route_check_time +
                bundle_cpu(bundle.size(), config_.bundle_bytes_per_sec);
  const auto msg = replication::StateTransferMsg::decode(Payload::copy_of(bundle));
  const auto anchor = replication::CheckpointMsg::decode(msg.anchor);
  ByteReader r(anchor.app_state.view());
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string key = r.str();
    const std::string value = r.str();
    // Through the inner invoke so dirty-set tracking and on_apply stay
    // coherent with normal writes.
    Result put = inner_.invoke("put", app::KvStoreServant::encode_put(key, value));
    cpu = cpu + put.cpu_time;
  }
  owned_add(range);
  fence_epoch_ = std::max(fence_epoch_, post_epoch);
  done_migrations_.insert(id);
  return status_reply(ShardStatus::kOk, cpu);
}

ShardServant::Result ShardServant::release(std::uint64_t id) {
  if (done_migrations_.count(id) != 0) {
    return status_reply(ShardStatus::kOk, config_.route_check_time);  // duplicate
  }
  if (!frozen_ || frozen_->id != id) {
    return status_reply(ShardStatus::kBadRequest, config_.route_check_time);
  }
  SimTime cpu = config_.route_check_time;
  std::vector<std::string> moved;
  for (const auto& [k, v] : inner_.items()) {
    if (frozen_->range.contains(shard_hash(k))) moved.push_back(k);
  }
  for (const auto& key : moved) {
    Result erase = inner_.invoke("erase", app::KvStoreServant::encode_key(key));
    cpu = cpu + erase.cpu_time;
  }
  owned_remove(frozen_->range);
  fence_epoch_ = std::max(fence_epoch_, frozen_->post_epoch);
  frozen_.reset();
  done_migrations_.insert(id);
  return status_reply(ShardStatus::kOk, cpu);
}

void ShardServant::owned_add(KeyRange range) {
  owned_.push_back(range);
  std::sort(owned_.begin(), owned_.end(),
            [](const KeyRange& a, const KeyRange& b) { return a.lo < b.lo; });
  // Coalesce adjacent/overlapping ranges so owned_ stays canonical.
  std::vector<KeyRange> merged;
  for (const auto& r : owned_) {
    if (!merged.empty() && r.lo != 0 &&
        static_cast<std::uint64_t>(merged.back().hi) + 1 >= r.lo) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  owned_ = std::move(merged);
}

void ShardServant::owned_remove(KeyRange range) {
  std::vector<KeyRange> next;
  for (const auto& o : owned_) {
    if (o.hi < range.lo || o.lo > range.hi) {
      next.push_back(o);
      continue;
    }
    if (o.lo < range.lo) next.push_back({o.lo, range.lo - 1});
    if (o.hi > range.hi) next.push_back({range.hi + 1, o.hi});
  }
  owned_ = std::move(next);
}

Bytes ShardServant::encode_data_args(std::uint64_t map_epoch, const std::string& key,
                                     const std::string* value) {
  orb::CdrWriter w;
  w.ulonglong(map_epoch);
  w.string(key);
  if (value != nullptr) w.string(*value);
  return std::move(w).take();
}

ShardServant::DataReply ShardServant::decode_data_reply(const Bytes& body) {
  orb::CdrReader r(body);
  DataReply reply;
  reply.status = static_cast<ShardStatus>(r.ulong());
  if (reply.status == ShardStatus::kOk) reply.inner = r.octets();
  return reply;
}

// --- checkpoint/state-transfer integration -----------------------------------
//
// The control state (fence epoch, ownership, in-flight migration, done set)
// rides in front of the inner store's encoding, in full, in both snapshots
// and deltas — it is tiny and must survive any chain position, because a
// replica promoted from a delta chain mid-migration has to keep enforcing
// the freeze.

Bytes ShardServant::encode_control() const {
  ByteWriter w;
  w.u64(fence_epoch_);
  w.u32(static_cast<std::uint32_t>(owned_.size()));
  for (const auto& r : owned_) {
    w.u32(r.lo);
    w.u32(r.hi);
  }
  w.boolean(frozen_.has_value());
  if (frozen_) {
    w.u64(frozen_->id);
    w.u32(frozen_->range.lo);
    w.u32(frozen_->range.hi);
    w.u64(frozen_->post_epoch);
    w.u64(frozen_->target.value());
  }
  w.u32(static_cast<std::uint32_t>(done_migrations_.size()));
  for (std::uint64_t id : done_migrations_) w.u64(id);
  return std::move(w).take();
}

std::span<const std::uint8_t> ShardServant::decode_control(
    std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  fence_epoch_ = r.u64();
  owned_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    KeyRange range;
    range.lo = r.u32();
    range.hi = r.u32();
    owned_.push_back(range);
  }
  frozen_.reset();
  if (r.boolean()) {
    Migration m;
    m.id = r.u64();
    m.range.lo = r.u32();
    m.range.hi = r.u32();
    m.post_epoch = r.u64();
    m.target = GroupId{r.u64()};
    frozen_ = m;
  }
  done_migrations_.clear();
  const std::uint32_t d = r.u32();
  for (std::uint32_t i = 0; i < d; ++i) done_migrations_.insert(r.u64());
  return raw.subspan(raw.size() - r.remaining());
}

Bytes ShardServant::snapshot() const {
  ByteWriter w;
  const Bytes control = encode_control();
  w.bytes(control);
  w.bytes(inner_.snapshot());
  return std::move(w).take();
}

void ShardServant::restore(std::span<const std::uint8_t> snapshot) {
  ByteReader r(snapshot);
  const auto control = r.bytes_view();
  decode_control(control);
  inner_.restore(r.bytes_view());
}

std::size_t ShardServant::state_size() const {
  return inner_.state_size() + encode_control().size();
}

std::uint64_t ShardServant::state_digest() const {
  const Bytes control = encode_control();
  return fnv1a(control) ^ (inner_.state_digest() * 0x9e3779b97f4a7c15ULL);
}

std::uint64_t ShardServant::cut_epoch() { return inner_.cut_epoch(); }

std::optional<Bytes> ShardServant::snapshot_delta(std::uint64_t since_epoch) const {
  auto inner = inner_.snapshot_delta(since_epoch);
  if (!inner) return std::nullopt;
  ByteWriter w;
  w.bytes(encode_control());
  w.bytes(*inner);
  return std::move(w).take();
}

void ShardServant::apply_delta(std::span<const std::uint8_t> delta) {
  ByteReader r(delta);
  decode_control(r.bytes_view());
  inner_.apply_delta(r.bytes_view());
}

}  // namespace vdep::shard
