#include "adaptive/policy.hpp"

namespace vdep::adaptive {

RateThresholdPolicy::RateThresholdPolicy(Config config)
    : config_(config),
      watcher_(config.low_rate, config.high_rate, config.min_dwell) {}

std::optional<replication::ReplicationStyle> RateThresholdPolicy::evaluate(
    const Signals& s) {
  auto transition = watcher_.update(s.now, s.request_rate);
  if (!transition) return std::nullopt;
  return *transition == monitor::ThresholdWatcher::State::kHigh ? config_.high_style
                                                                : config_.low_style;
}

HealthThresholdPolicy::HealthThresholdPolicy(Config config) : config_(config) {}

std::optional<replication::ReplicationStyle> HealthThresholdPolicy::evaluate(
    const Signals& s) {
  const bool at_risk =
      s.slo_burn >= config_.burn_degraded || s.max_phi >= config_.phi_degraded ||
      (config_.degrade_on_suspect && s.suspected_replicas > 0);
  if (at_risk == degraded_) return std::nullopt;
  // Degrading is urgent (dependability is at risk now); recovering respects
  // the dwell so a clearing-then-reappearing signal cannot thrash.
  if (!at_risk && transitioned_once_ &&
      s.now - last_transition_ < config_.min_dwell) {
    return std::nullopt;
  }
  degraded_ = at_risk;
  transitioned_once_ = true;
  last_transition_ = s.now;
  return degraded_ ? config_.degraded_style : config_.normal_style;
}

std::optional<replication::ReplicationStyle> ModePolicy::evaluate(const Signals&) {
  return mode_ == Mode::kMissionCritical ? replication::ReplicationStyle::kActive
                                         : replication::ReplicationStyle::kWarmPassive;
}

}  // namespace vdep::adaptive
