#include "adaptive/policy.hpp"

namespace vdep::adaptive {

RateThresholdPolicy::RateThresholdPolicy(Config config)
    : config_(config),
      watcher_(config.low_rate, config.high_rate, config.min_dwell) {}

std::optional<replication::ReplicationStyle> RateThresholdPolicy::evaluate(
    const Signals& s) {
  auto transition = watcher_.update(s.now, s.request_rate);
  if (!transition) return std::nullopt;
  return *transition == monitor::ThresholdWatcher::State::kHigh ? config_.high_style
                                                                : config_.low_style;
}

std::optional<replication::ReplicationStyle> ModePolicy::evaluate(const Signals&) {
  return mode_ == Mode::kMissionCritical ? replication::ReplicationStyle::kActive
                                         : replication::ReplicationStyle::kWarmPassive;
}

}  // namespace vdep::adaptive
