#include "adaptive/switch_protocol.hpp"

#include <algorithm>

namespace vdep::adaptive {

SwitchSummary summarize_switches(
    const std::vector<replication::Replicator::SwitchRecord>& history) {
  SwitchSummary s;
  s.count = history.size();
  RunningStats durations;
  for (const auto& rec : history) {
    durations.add(to_usec(rec.completed - rec.initiated));
    const bool passive_target =
        rec.to == replication::ReplicationStyle::kWarmPassive ||
        rec.to == replication::ReplicationStyle::kColdPassive;
    if (passive_target) {
      ++s.to_passive;
    } else {
      ++s.to_active;
    }
  }
  s.mean_duration_us = durations.mean();
  s.max_duration_us = durations.max();
  return s;
}

std::optional<std::string> validate_switch_history(
    const std::vector<replication::Replicator::SwitchRecord>& history) {
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& rec = history[i];
    if (rec.completed < rec.initiated) {
      return "switch " + std::to_string(i) + " completed before it was initiated";
    }
    if (rec.from == rec.to) {
      return "switch " + std::to_string(i) + " has identical from/to styles";
    }
    if (i > 0 && history[i - 1].to != rec.from) {
      return "switch " + std::to_string(i) + " does not start from the previous style";
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_switch_agreement(
    const std::vector<std::vector<replication::Replicator::SwitchRecord>>& histories) {
  if (histories.empty()) return std::nullopt;
  for (const auto& h : histories) {
    if (auto err = validate_switch_history(h)) return err;
  }
  const auto& reference = histories.front();
  for (std::size_t r = 1; r < histories.size(); ++r) {
    const auto& h = histories[r];
    if (h.size() != reference.size()) {
      return "replica " + std::to_string(r) + " recorded " + std::to_string(h.size()) +
             " switches, replica 0 recorded " + std::to_string(reference.size());
    }
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h[i].from != reference[i].from || h[i].to != reference[i].to) {
        return "replica " + std::to_string(r) + " disagrees on switch " +
               std::to_string(i);
      }
    }
  }
  return std::nullopt;
}

}  // namespace vdep::adaptive
