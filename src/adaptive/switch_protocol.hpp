// Analysis helpers for the runtime replication-style switch protocol.
//
// The protocol itself (paper Fig. 5) is executed inside the replicator —
// see replication::Replicator::handle_switch / complete_switch and the
// final-checkpoint and rollback paths — because it must interleave with
// request handling at exact total-order points. This header provides the
// measurement side: validating recorded switch histories and summarizing
// switch costs ("the observed delays required to complete the switch are
// comparable to the average response time").
#pragma once

#include <optional>
#include <vector>

#include "replication/replicator.hpp"
#include "util/stats.hpp"

namespace vdep::adaptive {

struct SwitchSummary {
  std::size_t count = 0;
  double mean_duration_us = 0.0;
  double max_duration_us = 0.0;
  std::size_t to_active = 0;
  std::size_t to_passive = 0;
};

// Aggregates one replica's switch history.
[[nodiscard]] SwitchSummary summarize_switches(
    const std::vector<replication::Replicator::SwitchRecord>& history);

// Validation used by tests and the Fig. 6 bench:
//  - durations are non-negative;
//  - styles alternate consistently (each record's `from` equals the previous
//    record's `to`);
//  - given histories from several replicas of one group, all agree on the
//    sequence of (from, to) pairs — the protocol's total-order guarantee.
// Returns nullopt on success or a description of the first inconsistency.
[[nodiscard]] std::optional<std::string> validate_switch_history(
    const std::vector<replication::Replicator::SwitchRecord>& history);

[[nodiscard]] std::optional<std::string> validate_switch_agreement(
    const std::vector<std::vector<replication::Replicator::SwitchRecord>>& histories);

}  // namespace vdep::adaptive
