#include "adaptive/adaptation_manager.hpp"

#include "obs/tracer.hpp"
#include "util/logging.hpp"

namespace vdep::adaptive {

AdaptationManager::AdaptationManager(replication::Replicator& replicator,
                                     monitor::ReplicatedStateObject& state,
                                     std::unique_ptr<AdaptationPolicy> policy,
                                     SimTime evaluate_interval)
    : replicator_(replicator),
      state_(&state),
      policy_(std::move(policy)),
      interval_(evaluate_interval) {}

AdaptationManager::AdaptationManager(replication::Replicator& replicator,
                                     std::unique_ptr<AdaptationPolicy> policy,
                                     SimTime evaluate_interval)
    : replicator_(replicator),
      state_(nullptr),
      policy_(std::move(policy)),
      interval_(evaluate_interval) {}

void AdaptationManager::start() {
  replicator_.process().post(interval_, [this] {
    evaluate();
    start();
  });
}

void AdaptationManager::set_policy(std::unique_ptr<AdaptationPolicy> policy) {
  policy_ = std::move(policy);
}

void AdaptationManager::evaluate() {
  Signals s;
  s.now = replicator_.process().now();
  if (state_ != nullptr) {
    s.request_rate = state_->aggregate_request_rate();
    s.cpu_load = state_->max_cpu_load();
  } else {
    s.request_rate = replicator_.observed_request_rate();
  }
  s.replicas = replicator_.current_view() ? replicator_.current_view()->size() : 0;
  if (health_ != nullptr) {
    s.max_phi = health_->max_phi();
    s.suspected_replicas = health_->suspected_replicas();
    s.slo_burn = health_->max_burn_rate();
    s.slo_breached = health_->slo_breached();
  }

  auto desired = policy_->evaluate(s);
  if (!desired) return;

  // Root span for the adaptation decision; the switch multicast (and thus the
  // whole Fig. 5 protocol downstream) parents under it via Tracer::Scope.
  obs::Tracer& tracer = replicator_.process().kernel().tracer();
  obs::Span span;
  if (tracer.enabled()) {
    span = tracer.start_span("adapt.decision", "adaptive",
                             replicator_.process().name());
    span.note("policy", policy_->name());
    span.note("rate", std::to_string(s.request_rate));
    span.note("cpu", std::to_string(s.cpu_load));
    span.note("replicas", std::to_string(s.replicas));
    if (health_ != nullptr) {
      span.note("max_phi", std::to_string(s.max_phi));
      span.note("suspected", std::to_string(s.suspected_replicas));
      span.note("slo_burn", std::to_string(s.slo_burn));
    }
    span.note("from", replication::to_string(replicator_.style()));
    span.note("to", replication::to_string(*desired));
  }

  if (replicator_.switch_in_progress()) {
    span.note("action", "suppressed_switch_in_progress");
    return;
  }
  if (*desired == replicator_.style()) {
    span.note("action", "suppressed_already_current");
    return;
  }

  log_info(s.now, "adaptation",
           replicator_.process().name() + " policy '" + policy_->name() +
               "' requests switch to " + replication::to_string(*desired) +
               " (rate=" + std::to_string(s.request_rate) + " req/s)");
  ++initiated_;
  span.note("action", "initiated");
  obs::Tracer::Scope scope(tracer, span.context());
  replicator_.request_style_switch(*desired);
}

}  // namespace vdep::adaptive
