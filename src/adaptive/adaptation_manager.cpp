#include "adaptive/adaptation_manager.hpp"

#include "obs/tracer.hpp"
#include "util/logging.hpp"

namespace vdep::adaptive {

AdaptationManager::AdaptationManager(replication::Replicator& replicator,
                                     monitor::ReplicatedStateObject& state,
                                     std::unique_ptr<AdaptationPolicy> policy,
                                     SimTime evaluate_interval)
    : replicator_(replicator),
      state_(state),
      policy_(std::move(policy)),
      interval_(evaluate_interval) {}

void AdaptationManager::start() {
  replicator_.process().post(interval_, [this] {
    evaluate();
    start();
  });
}

void AdaptationManager::set_policy(std::unique_ptr<AdaptationPolicy> policy) {
  policy_ = std::move(policy);
}

void AdaptationManager::evaluate() {
  Signals s;
  s.now = replicator_.process().now();
  s.request_rate = state_.aggregate_request_rate();
  s.cpu_load = state_.max_cpu_load();
  s.replicas = replicator_.current_view() ? replicator_.current_view()->size() : 0;

  auto desired = policy_->evaluate(s);
  if (!desired) return;

  // Root span for the adaptation decision; the switch multicast (and thus the
  // whole Fig. 5 protocol downstream) parents under it via Tracer::Scope.
  obs::Tracer& tracer = replicator_.process().kernel().tracer();
  obs::Span span;
  if (tracer.enabled()) {
    span = tracer.start_span("adapt.decision", "adaptive",
                             replicator_.process().name());
    span.note("policy", policy_->name());
    span.note("rate", std::to_string(s.request_rate));
    span.note("cpu", std::to_string(s.cpu_load));
    span.note("replicas", std::to_string(s.replicas));
    span.note("from", replication::to_string(replicator_.style()));
    span.note("to", replication::to_string(*desired));
  }

  if (replicator_.switch_in_progress()) {
    span.note("action", "suppressed_switch_in_progress");
    return;
  }
  if (*desired == replicator_.style()) {
    span.note("action", "suppressed_already_current");
    return;
  }

  log_info(s.now, "adaptation",
           replicator_.process().name() + " policy '" + policy_->name() +
               "' requests switch to " + replication::to_string(*desired) +
               " (rate=" + std::to_string(s.request_rate) + " req/s)");
  ++initiated_;
  span.note("action", "initiated");
  obs::Tracer::Scope scope(tracer, span.context());
  replicator_.request_style_switch(*desired);
}

}  // namespace vdep::adaptive
