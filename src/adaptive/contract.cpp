#include "adaptive/contract.hpp"

namespace vdep::adaptive {

bool Contract::satisfied_by(double latency_us, double bandwidth_mbps,
                            int faults_tolerated) const {
  return latency_us <= max_latency_us && bandwidth_mbps <= max_bandwidth_mbps &&
         faults_tolerated >= min_faults_tolerated;
}

ContractMonitor::ContractMonitor(Contract contract, SimTime violation_grace)
    : active_(std::move(contract)), grace_(violation_grace) {}

void ContractMonitor::add_degraded_alternative(Contract contract) {
  alternatives_.push_back(std::move(contract));
}

void ContractMonitor::set_on_degrade(
    std::function<void(const Contract&, const Contract&)> fn) {
  on_degrade_ = std::move(fn);
}

void ContractMonitor::set_on_exhausted(std::function<void(const Contract&)> fn) {
  on_exhausted_ = std::move(fn);
}

bool ContractMonitor::observe(SimTime now, double latency_us, double bandwidth_mbps,
                              int faults_tolerated) {
  if (active_.satisfied_by(latency_us, bandwidth_mbps, faults_tolerated)) {
    violating_since_.reset();
    return true;
  }
  if (!violating_since_) {
    violating_since_ = now;
    return false;
  }
  if (now - *violating_since_ >= grace_ && !exhausted_) {
    degrade();
    violating_since_.reset();
  }
  return false;
}

void ContractMonitor::degrade() {
  if (alternatives_.empty()) {
    exhausted_ = true;
    if (on_exhausted_) on_exhausted_(active_);
    return;
  }
  Contract next = alternatives_.front();
  alternatives_.erase(alternatives_.begin());
  ++degradations_;
  if (on_degrade_) on_degrade_(active_, next);
  active_ = std::move(next);
}

}  // namespace vdep::adaptive
