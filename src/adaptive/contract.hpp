// Behavioral contracts (paper Sec. 2 item 2 and Sec. 3.1): the specified
// behavior the system promises — bounds on latency, bandwidth, and a minimum
// fault-tolerance level. The ContractMonitor checks observed conditions
// against the active contract; on sustained violation it asks for
// re-adaptation, and if no configuration can honor the contract it offers
// pre-declared degraded alternatives before escalating to the operator.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "adaptive/policy.hpp"

namespace vdep::adaptive {

struct Contract {
  std::string name = "default";
  double max_latency_us = 7000.0;   // requirement 1 of Sec. 4.3
  double max_bandwidth_mbps = 3.0;  // requirement 2 of Sec. 4.3
  int min_faults_tolerated = 0;     // requirement 3's floor

  [[nodiscard]] bool satisfied_by(double latency_us, double bandwidth_mbps,
                                  int faults_tolerated) const;
};

class ContractMonitor {
 public:
  // `violation_grace`: how long a violation must persist before acting
  // (transient spikes are not renegotiations).
  ContractMonitor(Contract contract, SimTime violation_grace = msec(500));

  // Degraded alternatives, most-preferred first (paper: "versatile
  // dependability can offer alternative (possibly degraded) behavioral
  // contracts").
  void add_degraded_alternative(Contract contract);

  // Fired when the active contract is abandoned for a degraded one.
  void set_on_degrade(std::function<void(const Contract& from, const Contract& to)> fn);
  // Fired when not even the most degraded contract holds — the paper's
  // "manual intervention might be warranted"/operator-notification case.
  void set_on_exhausted(std::function<void(const Contract&)> fn);

  // Feed one observation; returns true if the active contract held.
  bool observe(SimTime now, double latency_us, double bandwidth_mbps,
               int faults_tolerated);

  [[nodiscard]] const Contract& active() const { return active_; }
  [[nodiscard]] std::size_t degradations() const { return degradations_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  void degrade();

  Contract active_;
  std::vector<Contract> alternatives_;
  SimTime grace_;
  std::optional<SimTime> violating_since_;
  std::size_t degradations_ = 0;
  bool exhausted_ = false;
  std::function<void(const Contract&, const Contract&)> on_degrade_;
  std::function<void(const Contract&)> on_exhausted_;
};

}  // namespace vdep::adaptive
