// The adaptation manager: one per replica, tying monitoring to the switch
// protocol (paper Sec. 2 item 4 and Sec. 4.2).
//
// Each manager periodically evaluates the active policy against the signals
// published through the replicated system-state object; when the desired
// style differs from the current one it initiates a switch. Several replicas
// may initiate concurrently — the protocol's step I discards duplicates —
// and because all managers read the *agreed* state, their decisions align.
#pragma once

#include <memory>

#include "adaptive/policy.hpp"
#include "monitor/replicated_state.hpp"
#include "replication/replicator.hpp"

namespace vdep::adaptive {

class AdaptationManager {
 public:
  AdaptationManager(replication::Replicator& replicator,
                    monitor::ReplicatedStateObject& state,
                    std::unique_ptr<AdaptationPolicy> policy,
                    SimTime evaluate_interval = msec(100));

  void start();

  // Runtime policy replacement ("policies ... introduced at run time").
  void set_policy(std::unique_ptr<AdaptationPolicy> policy);

  [[nodiscard]] const AdaptationPolicy& policy() const { return *policy_; }
  [[nodiscard]] std::uint64_t switches_initiated() const { return initiated_; }

 private:
  void evaluate();

  replication::Replicator& replicator_;
  monitor::ReplicatedStateObject& state_;
  std::unique_ptr<AdaptationPolicy> policy_;
  SimTime interval_;
  std::uint64_t initiated_ = 0;
};

}  // namespace vdep::adaptive
