// The adaptation manager: one per replica, tying monitoring to the switch
// protocol (paper Sec. 2 item 4 and Sec. 4.2).
//
// Each manager periodically evaluates the active policy against the signals
// published through the replicated system-state object; when the desired
// style differs from the current one it initiates a switch. Several replicas
// may initiate concurrently — the protocol's step I discards duplicates —
// and because all managers read the *agreed* state, their decisions align.
//
// A HealthMonitor can be attached as a second signal source: the manager
// then also fills the Signals' health fields (link suspicion, suspected
// replicas, SLO burn) so policies such as HealthThresholdPolicy can react
// to dependability risk, not just load.
#pragma once

#include <memory>

#include "adaptive/policy.hpp"
#include "monitor/health/health_monitor.hpp"
#include "monitor/replicated_state.hpp"
#include "replication/replicator.hpp"

namespace vdep::adaptive {

class AdaptationManager {
 public:
  AdaptationManager(replication::Replicator& replicator,
                    monitor::ReplicatedStateObject& state,
                    std::unique_ptr<AdaptationPolicy> policy,
                    SimTime evaluate_interval = msec(100));

  // Without a replicated-state object the request rate comes from the local
  // replicator; pair this with a health source for health-driven policies.
  AdaptationManager(replication::Replicator& replicator,
                    std::unique_ptr<AdaptationPolicy> policy,
                    SimTime evaluate_interval = msec(100));

  // Attaches the health plane as a signal source (must outlive the manager).
  void set_health_source(const monitor::health::HealthMonitor* health) {
    health_ = health;
  }

  void start();

  // Runtime policy replacement ("policies ... introduced at run time").
  void set_policy(std::unique_ptr<AdaptationPolicy> policy);

  [[nodiscard]] const AdaptationPolicy& policy() const { return *policy_; }
  [[nodiscard]] std::uint64_t switches_initiated() const { return initiated_; }

 private:
  void evaluate();

  replication::Replicator& replicator_;
  monitor::ReplicatedStateObject* state_;  // may be null
  const monitor::health::HealthMonitor* health_ = nullptr;
  std::unique_ptr<AdaptationPolicy> policy_;
  SimTime interval_;
  std::uint64_t initiated_ = 0;
};

}  // namespace vdep::adaptive
