// Adaptation policies — the rules that map observed conditions to a desired
// replication configuration (paper Sec. 2 item 3, Sec. 3.1 "Adaptation
// Policies"). Policies can be pre-defined or installed at runtime; the
// AdaptationManager evaluates the active policy on the agreed system state
// and triggers the switch protocol when the desired style changes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "monitor/rate_estimator.hpp"
#include "replication/types.hpp"

namespace vdep::adaptive {

// What a policy sees when evaluated.
struct Signals {
  SimTime now = kTimeZero;
  double request_rate = 0.0;   // agreed requests/s at the service
  double cpu_load = 0.0;       // max CPU load across replicas
  double bandwidth_mbps = 0.0; // measured network usage
  double avg_latency_us = 0.0; // smoothed round-trip estimate
  std::size_t replicas = 0;

  // Health-plane signals, filled when the AdaptationManager has a
  // HealthMonitor source attached (all zero otherwise).
  double max_phi = 0.0;              // worst link suspicion level
  std::size_t suspected_replicas = 0;
  double slo_burn = 0.0;             // worst SLO error-budget burn rate
  bool slo_breached = false;
};

class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Returns the style the system should be using, or nullopt for "no
  // preference / keep current".
  virtual std::optional<replication::ReplicationStyle> evaluate(const Signals& s) = 0;
};

// The Fig. 6 policy: active replication above a request-rate threshold
// (it sustains higher arrival rates), warm passive below (it conserves
// resources). Hysteresis plus a minimum dwell prevent thrashing.
class RateThresholdPolicy final : public AdaptationPolicy {
 public:
  struct Config {
    double high_rate = 600.0;  // req/s: switch to active above this
    double low_rate = 350.0;   // req/s: switch back to passive below this
    SimTime min_dwell = msec(500);
    replication::ReplicationStyle high_style = replication::ReplicationStyle::kActive;
    replication::ReplicationStyle low_style = replication::ReplicationStyle::kWarmPassive;
  };

  RateThresholdPolicy() : RateThresholdPolicy(Config{}) {}
  explicit RateThresholdPolicy(Config config);

  [[nodiscard]] std::string name() const override { return "rate_threshold"; }
  std::optional<replication::ReplicationStyle> evaluate(const Signals& s) override;

 private:
  Config config_;
  monitor::ThresholdWatcher watcher_;
};

// Health-driven policy: run the resource-conserving style while the health
// plane is quiet; degrade to the resilient style when dependability is at
// risk — a replica is suspected, a link's phi accrues past the suspicion
// threshold, or an SLO is burning its error budget. Recovery back to the
// normal style waits for every trigger to clear plus a minimum dwell, so a
// flapping signal cannot thrash the switch protocol.
class HealthThresholdPolicy final : public AdaptationPolicy {
 public:
  struct Config {
    double burn_degraded = 1.0;  // slo_burn at/above this degrades
    double phi_degraded = 8.0;   // max_phi at/above this degrades
    bool degrade_on_suspect = true;
    SimTime min_dwell = msec(500);
    replication::ReplicationStyle degraded_style =
        replication::ReplicationStyle::kActive;
    replication::ReplicationStyle normal_style =
        replication::ReplicationStyle::kWarmPassive;
  };

  HealthThresholdPolicy() : HealthThresholdPolicy(Config{}) {}
  explicit HealthThresholdPolicy(Config config);

  [[nodiscard]] std::string name() const override { return "health_threshold"; }
  std::optional<replication::ReplicationStyle> evaluate(const Signals& s) override;

 private:
  Config config_;
  bool degraded_ = false;
  bool transitioned_once_ = false;
  SimTime last_transition_ = kTimeZero;
};

// Conserve-resources policy for mode-based applications (paper Sec. 5: run
// resource-conservative most of the time, switch to the high-performance
// style only during the mission-critical window). Driven externally by mode
// changes rather than by measurements.
class ModePolicy final : public AdaptationPolicy {
 public:
  enum class Mode { kConserving, kMissionCritical };

  [[nodiscard]] std::string name() const override { return "mode"; }

  void set_mode(Mode mode) { mode_ = mode; }
  [[nodiscard]] Mode mode() const { return mode_; }

  std::optional<replication::ReplicationStyle> evaluate(const Signals& s) override;

 private:
  Mode mode_ = Mode::kConserving;
};

}  // namespace vdep::adaptive
