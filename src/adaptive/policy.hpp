// Adaptation policies — the rules that map observed conditions to a desired
// replication configuration (paper Sec. 2 item 3, Sec. 3.1 "Adaptation
// Policies"). Policies can be pre-defined or installed at runtime; the
// AdaptationManager evaluates the active policy on the agreed system state
// and triggers the switch protocol when the desired style changes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "monitor/rate_estimator.hpp"
#include "replication/types.hpp"

namespace vdep::adaptive {

// What a policy sees when evaluated.
struct Signals {
  SimTime now = kTimeZero;
  double request_rate = 0.0;   // agreed requests/s at the service
  double cpu_load = 0.0;       // max CPU load across replicas
  double bandwidth_mbps = 0.0; // measured network usage
  double avg_latency_us = 0.0; // smoothed round-trip estimate
  std::size_t replicas = 0;
};

class AdaptationPolicy {
 public:
  virtual ~AdaptationPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Returns the style the system should be using, or nullopt for "no
  // preference / keep current".
  virtual std::optional<replication::ReplicationStyle> evaluate(const Signals& s) = 0;
};

// The Fig. 6 policy: active replication above a request-rate threshold
// (it sustains higher arrival rates), warm passive below (it conserves
// resources). Hysteresis plus a minimum dwell prevent thrashing.
class RateThresholdPolicy final : public AdaptationPolicy {
 public:
  struct Config {
    double high_rate = 600.0;  // req/s: switch to active above this
    double low_rate = 350.0;   // req/s: switch back to passive below this
    SimTime min_dwell = msec(500);
    replication::ReplicationStyle high_style = replication::ReplicationStyle::kActive;
    replication::ReplicationStyle low_style = replication::ReplicationStyle::kWarmPassive;
  };

  RateThresholdPolicy() : RateThresholdPolicy(Config{}) {}
  explicit RateThresholdPolicy(Config config);

  [[nodiscard]] std::string name() const override { return "rate_threshold"; }
  std::optional<replication::ReplicationStyle> evaluate(const Signals& s) override;

 private:
  Config config_;
  monitor::ThresholdWatcher watcher_;
};

// Conserve-resources policy for mode-based applications (paper Sec. 5: run
// resource-conservative most of the time, switch to the high-performance
// style only during the mission-critical window). Driven externally by mode
// changes rather than by measurements.
class ModePolicy final : public AdaptationPolicy {
 public:
  enum class Mode { kConserving, kMissionCritical };

  [[nodiscard]] std::string name() const override { return "mode"; }

  void set_mode(Mode mode) { mode_ = mode; }
  [[nodiscard]] Mode mode() const { return mode_; }

  std::optional<replication::ReplicationStyle> evaluate(const Signals& s) override;

 private:
  Mode mode_ = Mode::kConserving;
};

}  // namespace vdep::adaptive
