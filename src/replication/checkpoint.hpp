// Checkpointing support: snapshot cost modelling and quiescence tracking.
//
// Taking a checkpoint in the paper's system means quiescing the primary
// (finish in-flight requests, hold new ones), serializing the process state,
// and SAFE-multicasting it to the backups. The quiescence window is the
// dominant latency cost of warm-passive replication — the effect that makes
// passive configurations ~3x slower than active ones in Fig. 7(a).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "util/time.hpp"

namespace vdep::replication {

// CPU time to serialize (or deserialize) `bytes` of state at `rate` bytes/s.
[[nodiscard]] SimTime snapshot_cpu_time(std::size_t bytes, double bytes_per_sec);

// Delta-aware flavour: a full checkpoint (de)serializes the whole state; a
// delta checkpoint only walks the dirty set it carries, so the quiescence
// blackout shrinks proportionally. `delta_bytes` empty = full checkpoint.
[[nodiscard]] SimTime checkpoint_cpu_time(std::size_t full_state_size,
                                          std::optional<std::size_t> delta_bytes,
                                          double bytes_per_sec);

// Tracks in-flight request executions so checkpoints (and style switches)
// can wait for quiescence: the callback fires as soon as the count returns
// to zero (immediately if already quiescent).
class QuiescenceTracker {
 public:
  void begin_execution() { ++outstanding_; }
  void end_execution();

  // Registers a one-shot waiter; fired (in registration order) when
  // outstanding() == 0.
  void when_quiescent(std::function<void()> fn);

  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }
  [[nodiscard]] bool quiescent() const { return outstanding_ == 0; }

 private:
  void fire_waiters();

  std::uint64_t outstanding_ = 0;
  std::vector<std::function<void()>> waiters_;
};

}  // namespace vdep::replication
