#include "replication/warm_passive.hpp"

#include "replication/replicator.hpp"

namespace vdep::replication {

bool WarmPassiveEngine::responder() const { return r_.my_rank() == 0; }

void WarmPassiveEngine::on_request(const RequestRecord& rec) {
  if (responder()) {
    r_.execute_request(rec, /*send_reply=*/true);
    // Load-coupled checkpointing: bound how stale the backups may get in
    // requests, not just in wall-clock time.
    const auto every = r_.params().checkpoint_every_requests;
    const auto& view = r_.current_view();
    if (every > 0 && view && view->size() > 1 &&
        r_.executions_since_checkpoint() >= every) {
      r_.take_checkpoint();
    }
  } else {
    r_.log_request(rec);
  }
}

void WarmPassiveEngine::on_checkpoint(const CheckpointMsg& msg) {
  // Backups apply checkpoints eagerly ("warm"), truncating their logs.
  r_.install_checkpoint(msg);
}

void WarmPassiveEngine::on_view_change(const gcs::View& old_view,
                                       const gcs::View& new_view) {
  const ProcessId self = r_.process().id();
  const bool was_head = !old_view.members.empty() && old_view.members.front().process == self;
  const bool is_head = !new_view.members.empty() && new_view.members.front().process == self;
  if (is_head && !was_head) {
    // The primary failed (or left): replay the log since the last checkpoint
    // and assume primary duties.
    r_.promote_warm();
  }
}

void WarmPassiveEngine::on_timer() {
  if (!responder()) return;
  const auto& view = r_.current_view();
  if (view && view->size() > 1) {
    r_.take_checkpoint();
  } else {
    // No backups to warm: snapshot locally so a restart has a recovery
    // point. Costs quiescence + serialization, no traffic.
    r_.take_local_checkpoint();
  }
}

}  // namespace vdep::replication
