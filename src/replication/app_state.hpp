// The contract an application must satisfy to be replicated.
//
// The paper replicates at the process level: the whole process state is
// captured/restored as a unit. Checkpointable extends the ORB Servant with
// snapshot/restore, and requires deterministic execution — the property that
// lets active replicas stay identical and lets backups reconstruct state by
// replaying logged requests.
#pragma once

#include <optional>
#include <span>

#include "orb/poa.hpp"

namespace vdep::replication {

class Checkpointable : public orb::Servant {
 public:
  // Full process-state snapshot (CDR/flat bytes; opaque to the replicator).
  [[nodiscard]] virtual Bytes snapshot() const = 0;
  // `snapshot` may alias a checkpoint frame still owned by the caller; the
  // implementation must copy whatever it keeps.
  virtual void restore(std::span<const std::uint8_t> snapshot) = 0;

  // Size used to model serialization cost and checkpoint bandwidth; usually
  // snapshot().size() but may be larger for apps with elaborate in-memory
  // state that compresses on marshalling.
  [[nodiscard]] virtual std::size_t state_size() const = 0;

  // Deterministic digest of the current state, used by consistency checks in
  // tests and by voting clients comparing replica outputs.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;

  // --- incremental checkpointing (optional) ---------------------------------
  // Apps that track their write set can hand the replicator O(dirty-state)
  // deltas instead of full snapshots. Epochs are app-local: cut_epoch()
  // closes the current mutation-tracking window and returns its id; a later
  // snapshot_delta(since) must return exactly the mutations recorded after
  // the cut labelled `since` (or nullopt when the app can no longer answer —
  // e.g. tracking was reset by restore() — in which case the replicator
  // falls back to a full snapshot). apply_delta() replays such a delta onto
  // the state the delta was cut against; the caller guarantees base
  // continuity via the checkpoint chain (see replicator.cpp).
  [[nodiscard]] virtual bool supports_delta() const { return false; }
  virtual std::uint64_t cut_epoch() { return 0; }
  [[nodiscard]] virtual std::optional<Bytes> snapshot_delta(
      std::uint64_t /*since_epoch*/) const {
    return std::nullopt;
  }
  // `delta` may alias a frame still owned by the caller; copy what you keep.
  virtual void apply_delta(std::span<const std::uint8_t> /*delta*/) {}
};

}  // namespace vdep::replication
