// The contract an application must satisfy to be replicated.
//
// The paper replicates at the process level: the whole process state is
// captured/restored as a unit. Checkpointable extends the ORB Servant with
// snapshot/restore, and requires deterministic execution — the property that
// lets active replicas stay identical and lets backups reconstruct state by
// replaying logged requests.
#pragma once

#include <span>

#include "orb/poa.hpp"

namespace vdep::replication {

class Checkpointable : public orb::Servant {
 public:
  // Full process-state snapshot (CDR/flat bytes; opaque to the replicator).
  [[nodiscard]] virtual Bytes snapshot() const = 0;
  // `snapshot` may alias a checkpoint frame still owned by the caller; the
  // implementation must copy whatever it keeps.
  virtual void restore(std::span<const std::uint8_t> snapshot) = 0;

  // Size used to model serialization cost and checkpoint bandwidth; usually
  // snapshot().size() but may be larger for apps with elaborate in-memory
  // state that compresses on marshalling.
  [[nodiscard]] virtual std::size_t state_size() const = 0;

  // Deterministic digest of the current state, used by consistency checks in
  // tests and by voting clients comparing replica outputs.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;
};

}  // namespace vdep::replication
