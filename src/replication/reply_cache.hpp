// Reply cache: duplicate suppression across client retransmissions and
// primary failovers.
//
// Keyed by the FT_REQUEST identity (client process, retention id). When a
// request is re-delivered — because the client retried after a failover, or
// because the group-communication layer re-ordered a forward during a leader
// takeover — the replica resends the cached reply instead of re-executing,
// which is what makes the end-to-end semantics exactly-once with respect to
// application state. The cache travels inside checkpoints so promoted
// backups inherit it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>

#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/payload.hpp"

namespace vdep::replication {

class ReplyCache {
 public:
  explicit ReplyCache(std::size_t capacity = 4096);

  // Records the reply for a request; evicts the oldest entry at capacity.
  // The cached buffer is shared with the reply in flight, not copied.
  void put(const RequestId& id, Payload reply_giop);

  [[nodiscard]] std::optional<Payload> get(const RequestId& id) const;
  [[nodiscard]] bool contains(const RequestId& id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] Bytes serialize() const;
  // Only the newest `max_entries` replies — what checkpoints carry. Older
  // replies are past the client retransmission window (FT-CORBA's request
  // duration policy), so a promoted backup never needs them.
  [[nodiscard]] Bytes serialize_recent(std::size_t max_entries) const;
  // Restored entries alias `raw`'s buffer when it carries an owner.
  void restore(const Payload& raw);
  void clear();

 private:
  void evict_to_capacity();

  std::size_t capacity_;
  // Insertion-ordered FIFO eviction; a map from id to the reply plus the FIFO
  // queue of ids. (LRU would touch on get; FIFO matches "old requests have
  // expired" semantics from FT-CORBA's request duration policy.)
  std::map<RequestId, Payload> entries_;
  std::list<RequestId> order_;
};

}  // namespace vdep::replication
