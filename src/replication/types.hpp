// Replication styles and the envelope protocol replicas speak over the
// group-communication system.
//
// Styles (paper Sec. 3.1 plus the planned extensions from Sec. 6):
//   Active       — state-machine replication: every replica executes every
//                  request and replies; the client accepts the first reply
//                  (or majority-votes).
//   WarmPassive  — primary executes and replies; backups log requests and
//                  apply periodic checkpoints; failover promotes the
//                  highest-ranked backup, which replays the log.
//   ColdPassive  — like warm passive, but backups are dormant: they retain
//                  the latest checkpoint and log without applying them, and
//                  pay a launch delay before taking over.
//   SemiActive   — Delta-4 XPA leader/follower: all execute, only the leader
//                  replies; failover is instant and needs no checkpoints.
//   Hybrid       — an active core of the first k replicas (instant failover,
//                  k-fold execution) plus warm observers beyond it (cheap
//                  extra redundancy) — the Sec. 6 extension direction.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/payload.hpp"
#include "util/time.hpp"

namespace vdep::replication {

enum class ReplicationStyle : std::uint8_t {
  kActive = 0,
  kWarmPassive = 1,
  kColdPassive = 2,
  kSemiActive = 3,
  kHybrid = 4,
};

[[nodiscard]] std::string to_string(ReplicationStyle style);

// Short form used in the paper's tables: A(3), P(2), ...
[[nodiscard]] std::string style_code(ReplicationStyle style);

// Messages multicast within a replica group.
struct RepEnvelope {
  enum class Type : std::uint8_t {
    kRequest = 1,       // a client's GIOP request (payload = GIOP bytes)
    kCheckpoint = 2,    // full state checkpoint / anchor (payload = CheckpointMsg)
    kSwitch = 3,        // replication-style switch, Fig. 5 (payload = SwitchMsg)
    kStateRequest = 4,  // a joining replica asking for a state transfer
    // Incremental checkpointing (new types keep full checkpoints, type 2,
    // byte-identical to the original wire format):
    kCheckpointDelta = 5,  // delta checkpoint (payload = CheckpointMsg, kDelta)
    kStateTransfer = 6,    // anchor + delta suffix (payload = StateTransferMsg)
    kAnchorRequest = 7,    // a backup with a chain gap asking for a full anchor
  };

  Type type = Type::kRequest;
  Payload payload;

  [[nodiscard]] Bytes encode() const;
  // The decoded payload aliases `raw`'s buffer when it carries an owner.
  static RepEnvelope decode(const Payload& raw);
};

// A checkpoint: the application snapshot plus everything a backup needs to
// take over without violating exactly-once:
//  - `applied` maps each client to the highest retention id folded into this
//    snapshot. Retention ids are per-client monotone (FT-CORBA), so a
//    request is a duplicate w.r.t. this state iff its id is <= the map's
//    entry — robust against client retransmissions, group-layer replays and
//    joiners whose local delivery counts differ from the primary's;
//  - `reply_cache` holds recent replies for resending to retrying clients.
//
// Two kinds on the wire. A *full* checkpoint (anchor) carries the whole app
// snapshot and is self-contained; its encoding is unchanged from the
// original protocol. A *delta* checkpoint carries only the app's dirty set
// since `base_epoch` (the checkpoint id it chains onto) and is only
// installable on a replica whose state is exactly at `base_epoch`;
// `delta_epoch` equals `checkpoint_id` and is written explicitly so the
// chain position survives re-encoding. The applied map and reply cache are
// always complete (they are small), so log truncation and exactly-once dedup
// work identically for both kinds.
struct CheckpointMsg {
  enum class Kind : std::uint8_t { kFull = 0, kDelta = 1 };

  Kind kind = Kind::kFull;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t base_epoch = 0;   // delta only: predecessor checkpoint id
  std::uint64_t delta_epoch = 0;  // delta only: == checkpoint_id
  std::map<ProcessId, std::uint64_t> applied;
  Payload app_state;  // full snapshot, or the app's delta encoding
  Payload reply_cache;

  [[nodiscard]] Bytes encode() const;
  static CheckpointMsg decode(const Payload& raw, Kind kind = Kind::kFull);
};

// State transfer bundle: the donor's retained full anchor plus the encoded
// delta suffix cut since it. A joiner installs the whole chain atomically;
// initialized backups install whatever continues their own chain (the bundle
// carries the freshly cut delta, which is not multicast separately).
struct StateTransferMsg {
  Payload anchor;               // encoded full CheckpointMsg
  std::vector<Payload> deltas;  // encoded delta CheckpointMsgs, chain order

  [[nodiscard]] Bytes encode() const;
  static StateTransferMsg decode(const Payload& raw);
};

struct SwitchMsg {
  ReplicationStyle target = ReplicationStyle::kActive;
  // Who initiated, for tracing; duplicates from concurrent initiators are
  // discarded at delivery (paper Fig. 5, step I).
  ProcessId initiator;

  [[nodiscard]] Bytes encode() const;
  static SwitchMsg decode(std::span<const std::uint8_t> raw);
};

struct ReplicatorParams {
  SimTime traversal_cost;            // per-message interposition cost
  // Checkpointing frequency — the paper's low-level knob, in both flavours:
  // a periodic floor (time-based) and an every-N-requests trigger so that
  // backup staleness stays bounded under load (0 disables the trigger).
  SimTime checkpoint_interval;       // warm/cold passive
  std::uint32_t checkpoint_every_requests = 25;
  // Incremental checkpointing cadence ("CheckpointAnchorInterval" knob):
  // every K-th group checkpoint is a full anchor; the up-to-K-1 checkpoints
  // between anchors are dirty-set deltas (when the app supports them). 1 =
  // every checkpoint is full — byte-identical to the pre-delta protocol.
  std::uint32_t checkpoint_anchor_interval = 1;
  // Hybrid style: how many replicas (by view rank) form the active core.
  std::size_t hybrid_active_core = 2;
  double snapshot_bytes_per_sec = 100e6;  // state (de)serialization CPU rate
  SimTime cold_launch_delay;         // cold passive: backup start-up time
  std::size_t reply_cache_capacity = 4096;
  // How many recent replies travel inside a checkpoint (see
  // ReplyCache::serialize_recent).
  std::size_t checkpoint_reply_entries = 16;
  // Suppress replies when replaying as a catching-up joiner (live replicas
  // already replied); failover replays always reply.
  bool quiet_joiner_replay = true;
  // TEST ONLY — deliberate safety bug for the chaos engine's oracle
  // self-check: disables the applied-frontier/reply-cache dedup so client
  // retransmissions and log replays execute again. Never enable in a real
  // configuration.
  bool skip_reply_dedup = false;

  ReplicatorParams();
};

}  // namespace vdep::replication
