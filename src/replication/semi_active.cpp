#include "replication/semi_active.hpp"

#include "replication/replicator.hpp"

namespace vdep::replication {

bool SemiActiveEngine::responder() const { return r_.my_rank() == 0; }

void SemiActiveEngine::on_request(const RequestRecord& rec) {
  // Followers execute too (their reply cache fills), but stay silent; the
  // leader transmits. A client retransmission after leader failover hits the
  // new leader's reply cache, so no reply is ever lost permanently.
  r_.execute_request(rec, /*send_reply=*/responder());
}

void SemiActiveEngine::on_checkpoint(const CheckpointMsg& /*msg*/) {
  // Followers are always current; checkpoints only matter for state
  // transfers to joiners, handled before the engine.
}

void SemiActiveEngine::on_view_change(const gcs::View& /*old_view*/,
                                      const gcs::View& /*new_view*/) {
  // Leadership follows view rank; nothing to replay.
}

}  // namespace vdep::replication
