#include "replication/types.hpp"

#include "util/assert.hpp"
#include "util/calibration.hpp"

namespace vdep::replication {

std::string to_string(ReplicationStyle style) {
  switch (style) {
    case ReplicationStyle::kActive: return "active";
    case ReplicationStyle::kWarmPassive: return "warm_passive";
    case ReplicationStyle::kColdPassive: return "cold_passive";
    case ReplicationStyle::kSemiActive: return "semi_active";
    case ReplicationStyle::kHybrid: return "hybrid";
  }
  return "?";
}

std::string style_code(ReplicationStyle style) {
  switch (style) {
    case ReplicationStyle::kActive: return "A";
    case ReplicationStyle::kWarmPassive: return "P";
    case ReplicationStyle::kColdPassive: return "C";
    case ReplicationStyle::kSemiActive: return "S";
    case ReplicationStyle::kHybrid: return "H";
  }
  return "?";
}

ReplicatorParams::ReplicatorParams()
    : traversal_cost(calib::kReplicatorTraversal),
      checkpoint_interval(calib::kDefaultCheckpointInterval),
      cold_launch_delay(msec(800)) {}

Bytes RepEnvelope::encode() const {
  ByteWriter w(payload.size() + 8);
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload);
  return std::move(w).take();
}

RepEnvelope RepEnvelope::decode(const Payload& raw) {
  ByteReader r(raw.owner(), raw);
  RepEnvelope e;
  const auto t = r.u8();
  if (t < 1 || t > 7) throw r.error("bad envelope type", 0);
  e.type = static_cast<Type>(t);
  e.payload = read_payload(r);
  return e;
}

Bytes CheckpointMsg::encode() const {
  ByteWriter w(app_state.size() + reply_cache.size() + 48);
  w.u64(checkpoint_id);
  if (kind == Kind::kDelta) {
    // The kind itself travels in the envelope type (kCheckpointDelta), so
    // full checkpoints stay byte-identical to the pre-delta wire format.
    VDEP_ASSERT_MSG(delta_epoch == checkpoint_id, "delta_epoch != checkpoint_id");
    w.u64(base_epoch);
    w.u64(delta_epoch);
  }
  w.u32(static_cast<std::uint32_t>(applied.size()));
  for (const auto& [client, rid] : applied) {
    w.u64(client.value());
    w.u64(rid);
  }
  w.bytes(app_state);
  w.bytes(reply_cache);
  return std::move(w).take();
}

CheckpointMsg CheckpointMsg::decode(const Payload& raw, Kind kind) {
  ByteReader r(raw.owner(), raw);
  CheckpointMsg m;
  m.kind = kind;
  m.checkpoint_id = r.u64();
  if (kind == Kind::kDelta) {
    m.base_epoch = r.u64();
    m.delta_epoch = r.u64();
    if (m.delta_epoch != m.checkpoint_id) {
      throw r.error("delta checkpoint id/epoch mismatch", 8);
    }
    if (m.base_epoch >= m.delta_epoch) {
      throw r.error("delta checkpoint chains backwards", 8);
    }
  }
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId client{r.u64()};
    m.applied[client] = r.u64();
  }
  m.app_state = read_payload(r);
  m.reply_cache = read_payload(r);
  return m;
}

Bytes StateTransferMsg::encode() const {
  std::size_t total = anchor.size() + 16;
  for (const auto& d : deltas) total += d.size() + 4;
  ByteWriter w(total);
  w.bytes(anchor);
  w.u32(static_cast<std::uint32_t>(deltas.size()));
  for (const auto& d : deltas) w.bytes(d);
  return std::move(w).take();
}

StateTransferMsg StateTransferMsg::decode(const Payload& raw) {
  ByteReader r(raw.owner(), raw);
  StateTransferMsg m;
  m.anchor = read_payload(r);
  const auto n = r.u32();
  m.deltas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.deltas.push_back(read_payload(r));
  return m;
}

Bytes SwitchMsg::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(target));
  w.u64(initiator.value());
  return std::move(w).take();
}

SwitchMsg SwitchMsg::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  SwitchMsg m;
  const auto t = r.u8();
  if (t > 4) throw r.error("bad switch target", 0);
  m.target = static_cast<ReplicationStyle>(t);
  m.initiator = ProcessId{r.u64()};
  return m;
}

}  // namespace vdep::replication
