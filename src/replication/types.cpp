#include "replication/types.hpp"

#include "util/assert.hpp"
#include "util/calibration.hpp"

namespace vdep::replication {

std::string to_string(ReplicationStyle style) {
  switch (style) {
    case ReplicationStyle::kActive: return "active";
    case ReplicationStyle::kWarmPassive: return "warm_passive";
    case ReplicationStyle::kColdPassive: return "cold_passive";
    case ReplicationStyle::kSemiActive: return "semi_active";
    case ReplicationStyle::kHybrid: return "hybrid";
  }
  return "?";
}

std::string style_code(ReplicationStyle style) {
  switch (style) {
    case ReplicationStyle::kActive: return "A";
    case ReplicationStyle::kWarmPassive: return "P";
    case ReplicationStyle::kColdPassive: return "C";
    case ReplicationStyle::kSemiActive: return "S";
    case ReplicationStyle::kHybrid: return "H";
  }
  return "?";
}

ReplicatorParams::ReplicatorParams()
    : traversal_cost(calib::kReplicatorTraversal),
      checkpoint_interval(calib::kDefaultCheckpointInterval),
      cold_launch_delay(msec(800)) {}

Bytes RepEnvelope::encode() const {
  ByteWriter w(payload.size() + 8);
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload);
  return std::move(w).take();
}

RepEnvelope RepEnvelope::decode(const Payload& raw) {
  ByteReader r(raw.owner(), raw);
  RepEnvelope e;
  const auto t = r.u8();
  if (t < 1 || t > 4) throw r.error("bad envelope type", 0);
  e.type = static_cast<Type>(t);
  e.payload = read_payload(r);
  return e;
}

Bytes CheckpointMsg::encode() const {
  ByteWriter w(app_state.size() + reply_cache.size() + 32);
  w.u64(checkpoint_id);
  w.u32(static_cast<std::uint32_t>(applied.size()));
  for (const auto& [client, rid] : applied) {
    w.u64(client.value());
    w.u64(rid);
  }
  w.bytes(app_state);
  w.bytes(reply_cache);
  return std::move(w).take();
}

CheckpointMsg CheckpointMsg::decode(const Payload& raw) {
  ByteReader r(raw.owner(), raw);
  CheckpointMsg m;
  m.checkpoint_id = r.u64();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId client{r.u64()};
    m.applied[client] = r.u64();
  }
  m.app_state = read_payload(r);
  m.reply_cache = read_payload(r);
  return m;
}

Bytes SwitchMsg::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(target));
  w.u64(initiator.value());
  return std::move(w).take();
}

SwitchMsg SwitchMsg::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  SwitchMsg m;
  const auto t = r.u8();
  if (t > 4) throw r.error("bad switch target", 0);
  m.target = static_cast<ReplicationStyle>(t);
  m.initiator = ProcessId{r.u64()};
  return m;
}

}  // namespace vdep::replication
