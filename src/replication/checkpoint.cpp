#include "replication/checkpoint.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::replication {

SimTime snapshot_cpu_time(std::size_t bytes, double bytes_per_sec) {
  VDEP_ASSERT(bytes_per_sec > 0);
  return sec_f(static_cast<double>(bytes) / bytes_per_sec);
}

SimTime checkpoint_cpu_time(std::size_t full_state_size,
                            std::optional<std::size_t> delta_bytes,
                            double bytes_per_sec) {
  // A delta never costs more than the full snapshot it replaces (dirty sets
  // are subsets of the state; a pathological app that encodes deltas larger
  // than its state still only pays the full-serialization price).
  const std::size_t bytes =
      delta_bytes ? std::min(*delta_bytes, full_state_size) : full_state_size;
  return snapshot_cpu_time(bytes, bytes_per_sec);
}

void QuiescenceTracker::end_execution() {
  VDEP_ASSERT(outstanding_ > 0);
  --outstanding_;
  if (outstanding_ == 0) fire_waiters();
}

void QuiescenceTracker::when_quiescent(std::function<void()> fn) {
  if (outstanding_ == 0) {
    fn();
    return;
  }
  waiters_.push_back(std::move(fn));
}

void QuiescenceTracker::fire_waiters() {
  while (!waiters_.empty() && outstanding_ == 0) {
    auto fn = std::move(waiters_.front());
    waiters_.erase(waiters_.begin());
    fn();
  }
}

}  // namespace vdep::replication
