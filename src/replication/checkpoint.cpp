#include "replication/checkpoint.hpp"

#include "util/assert.hpp"

namespace vdep::replication {

SimTime snapshot_cpu_time(std::size_t bytes, double bytes_per_sec) {
  VDEP_ASSERT(bytes_per_sec > 0);
  return sec_f(static_cast<double>(bytes) / bytes_per_sec);
}

void QuiescenceTracker::end_execution() {
  VDEP_ASSERT(outstanding_ > 0);
  --outstanding_;
  if (outstanding_ == 0) fire_waiters();
}

void QuiescenceTracker::when_quiescent(std::function<void()> fn) {
  if (outstanding_ == 0) {
    fn();
    return;
  }
  waiters_.push_back(std::move(fn));
}

void QuiescenceTracker::fire_waiters() {
  while (!waiters_.empty() && outstanding_ == 0) {
    auto fn = std::move(waiters_.front());
    waiters_.erase(waiters_.begin());
    fn();
  }
}

}  // namespace vdep::replication
