// Warm passive replication — primary-backup with standby backups: only the
// primary (rank 0 in the current view) executes and replies; backups log
// requests and periodically receive state checkpoints. On primary failure
// the senior backup replays the logged requests since the last checkpoint
// and takes over. Resource-frugal, slower to respond (checkpoint quiescence)
// and to recover (replay) than active replication.
#pragma once

#include "replication/engine.hpp"

namespace vdep::replication {

class WarmPassiveEngine final : public ReplicationEngine {
 public:
  using ReplicationEngine::ReplicationEngine;

  [[nodiscard]] ReplicationStyle style() const override {
    return ReplicationStyle::kWarmPassive;
  }
  [[nodiscard]] bool responder() const override;

  void on_request(const RequestRecord& rec) override;
  void on_checkpoint(const CheckpointMsg& msg) override;
  void on_view_change(const gcs::View& old_view, const gcs::View& new_view) override;
  void on_timer() override;
};

}  // namespace vdep::replication
