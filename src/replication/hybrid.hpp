// Hybrid replication — the paper's Sec. 6 direction (after Bakken et al.,
// "Towards hybrid replication and caching strategies"): "some of the
// replicas can be active and some can be passive in order to increase the
// scalability of the system while keeping low fail-over delays."
//
// The first `hybrid_active_core` replicas (by view rank) form an active
// core: each executes every request and replies, so the failure of a core
// replica is absorbed with no client-visible gap. Replicas beyond the core
// are warm observers: they log requests and install periodic checkpoints
// from the head, contributing no execution or reply load. When an observer
// ascends into the core (after core crashes), it replays its short log —
// warm-passive recovery cost, but only on the rare multi-failure path.
#pragma once

#include "replication/engine.hpp"

namespace vdep::replication {

class HybridEngine final : public ReplicationEngine {
 public:
  using ReplicationEngine::ReplicationEngine;

  [[nodiscard]] ReplicationStyle style() const override {
    return ReplicationStyle::kHybrid;
  }
  [[nodiscard]] bool responder() const override;

  void on_request(const RequestRecord& rec) override;
  void on_checkpoint(const CheckpointMsg& msg) override;
  void on_view_change(const gcs::View& old_view, const gcs::View& new_view) override;
  void on_timer() override;

 private:
  [[nodiscard]] bool in_core() const;
  [[nodiscard]] static bool rank_in_core(std::size_t rank, std::size_t core);

  // Observer checkpoints fire every Nth engine tick (see on_timer).
  static constexpr std::uint64_t kObserverSyncEvery = 4;
  std::uint64_t ticks_ = 0;
};

}  // namespace vdep::replication
