// Strategy interface for replication styles — the tunable middle layer of
// the replicator stack (Fig. 2). The Replicator owns shared machinery
// (execution, reply cache, message log, checkpoint/quiescence, the switch
// protocol); engines decide who executes, who replies, who logs, and what a
// view change means for their style. Engines are swapped live by the switch
// protocol of Fig. 5.
#pragma once

#include "gcs/view.hpp"
#include "obs/trace_context.hpp"
#include "replication/types.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace vdep::replication {

class Replicator;

// A client request as delivered by the group layer, with its FT identity.
struct RequestRecord {
  std::uint64_t index = 0;  // local delivery index (1-based)
  RequestId rid;            // FT_REQUEST identity
  NodeId client_daemon;     // reply destination daemon
  SimTime expiration = kTimeZero;  // FT_REQUEST expiration (0 = none)
  Payload giop;             // raw GIOP request (aliases the delivered frame)
  obs::TraceContext trace;  // caller's context (from the GIOP trace context)
};

class ReplicationEngine {
 public:
  explicit ReplicationEngine(Replicator& replicator) : r_(replicator) {}
  virtual ~ReplicationEngine() = default;

  [[nodiscard]] virtual ReplicationStyle style() const = 0;

  // Whether this replica answers clients under the current view/role.
  [[nodiscard]] virtual bool responder() const = 0;

  // Engine activated: fresh start, post-switch, or post-promotion.
  virtual void on_start() {}

  // A client request delivered in total order.
  virtual void on_request(const RequestRecord& rec) = 0;

  // A checkpoint from another replica delivered in total order.
  virtual void on_checkpoint(const CheckpointMsg& msg) = 0;

  // Membership changed (crash, leave, join) — delivered in total order.
  virtual void on_view_change(const gcs::View& old_view, const gcs::View& new_view) = 0;

  // Periodic tick (the checkpointing-frequency knob drives its period).
  virtual void on_timer() {}

 protected:
  Replicator& r_;
};

}  // namespace vdep::replication
