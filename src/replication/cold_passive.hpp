// Cold passive replication — "a backup is launched only when the primary
// crashes" (paper Sec. 3.1). Dormant backups retain the latest checkpoint
// and the request log without applying them; promotion pays a launch delay,
// then installs the stored checkpoint and replays. Cheapest in steady state,
// slowest to recover.
#pragma once

#include "replication/engine.hpp"

namespace vdep::replication {

class ColdPassiveEngine final : public ReplicationEngine {
 public:
  using ReplicationEngine::ReplicationEngine;

  [[nodiscard]] ReplicationStyle style() const override {
    return ReplicationStyle::kColdPassive;
  }
  [[nodiscard]] bool responder() const override;

  void on_request(const RequestRecord& rec) override;
  void on_checkpoint(const CheckpointMsg& msg) override;
  void on_view_change(const gcs::View& old_view, const gcs::View& new_view) override;
  void on_timer() override;
};

}  // namespace vdep::replication
