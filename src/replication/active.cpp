#include "replication/active.hpp"

#include "replication/replicator.hpp"

namespace vdep::replication {

void ActiveEngine::on_request(const RequestRecord& rec) {
  r_.execute_request(rec, /*send_reply=*/true);
}

void ActiveEngine::on_checkpoint(const CheckpointMsg& /*msg*/) {
  // State transfers for joiners are handled before the engine sees them; an
  // up-to-date active replica needs nothing from a checkpoint.
}

void ActiveEngine::on_view_change(const gcs::View& /*old_view*/,
                                  const gcs::View& /*new_view*/) {
  // Survivors keep executing; nothing to do. Crash recovery of the *client's*
  // pending requests is the client coordinator's retransmission job.
}

}  // namespace vdep::replication
