#include "replication/client_coordinator.hpp"

#include "orb/giop.hpp"
#include "util/assert.hpp"
#include "util/calibration.hpp"
#include "util/logging.hpp"

namespace vdep::replication {

ClientCoordinatorParams::ClientCoordinatorParams()
    : traversal_cost(calib::kReplicatorTraversal) {}

ClientCoordinator::ClientCoordinator(net::Network& network, gcs::Daemon& daemon,
                                     sim::Process& process,
                                     ClientCoordinatorParams params)
    : network_(network), process_(process), params_(params) {
  endpoint_ = std::make_unique<gcs::Endpoint>(daemon, process);
  endpoint_->set_private_handler(
      [this](const gcs::PrivateMessage& msg) { on_private(msg); });
}

void ClientCoordinator::send_request(const orb::ObjectRef& ref, Payload giop) {
  VDEP_ASSERT_MSG(ref.group.has_value(),
                  "client coordinator needs a group profile in the object reference");

  // Interception: rewrite the request with the FT_REQUEST context so every
  // replica can identify it across retransmissions.
  orb::GiopMessage parsed = orb::decode_giop(giop);
  VDEP_ASSERT(parsed.request.has_value());

  orb::FtRequestContext ctx;
  ctx.client = process_.id();
  ctx.retention_id = parsed.request->request_id;
  ctx.client_daemon = endpoint_->daemon_host();
  ctx.expiration = process_.now() + params_.request_expiration;
  parsed.request->service_contexts.push_back(ctx.to_context());

  // The trace context is injected unconditionally (zeros when tracing is
  // off): the replicated request's wire size must not depend on tracing.
  obs::Span span = process_.kernel().tracer().start_child(
      "coord.send", "replication", process_.name());
  parsed.request->service_contexts.push_back(orb::trace_to_context(
      span.active() ? span.context() : obs::TraceContext{}));

  RepEnvelope env{RepEnvelope::Type::kRequest, parsed.request->encode()};

  Pending pending;
  pending.group = ref.group->group;
  pending.wire = env.encode();
  pending.span = std::move(span);
  const std::uint32_t request_id = parsed.request->request_id;
  auto [it, inserted] = outstanding_.emplace(request_id, std::move(pending));
  VDEP_ASSERT_MSG(inserted, "request id reused while outstanding");

  // Interposition cost, then multicast into the server group.
  network_.cpu(process_.host())
      .execute(params_.traversal_cost, process_.guarded([this, request_id] {
        auto pit = outstanding_.find(request_id);
        if (pit == outstanding_.end()) return;  // cancelled meanwhile
        transmit(request_id, pit->second);
      }));
}

void ClientCoordinator::transmit(std::uint32_t request_id, Pending& pending) {
  // The multicast inherits the coord.send context so the daemon-side Forward
  // carries it (retries rejoin the same trace).
  obs::Tracer::Scope scope(process_.kernel().tracer(), pending.span.context());
  endpoint_->multicast(pending.group, gcs::ServiceType::kAgreed, pending.wire);
  arm_retry(request_id);
}

void ClientCoordinator::arm_retry(std::uint32_t request_id) {
  auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) return;
  it->second.retry_timer.cancel();
  it->second.retry_timer = process_.post(params_.retry_timeout, [this, request_id] {
    auto pit = outstanding_.find(request_id);
    if (pit == outstanding_.end()) return;
    if (pit->second.retries >= params_.max_retries) {
      ++expired_;
      pit->second.span.note("outcome", "gave_up");
      log_warn(process_.now(), "client-coord",
               process_.name() + " giving up on request " + std::to_string(request_id));
      outstanding_.erase(pit);
      return;
    }
    ++pit->second.retries;
    ++retransmissions_;
    if (pit->second.span.active()) {
      auto retry = process_.kernel().tracer().start_span(
          "coord.retry", "replication", process_.name(), pit->second.span.context());
      retry.note("attempt", std::to_string(pit->second.retries));
    }
    transmit(request_id, pit->second);
  });
}

void ClientCoordinator::cancel(std::uint32_t request_id) {
  auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) return;
  it->second.retry_timer.cancel();
  outstanding_.erase(it);
}

void ClientCoordinator::on_private(const gcs::PrivateMessage& msg) {
  // Interposition cost on the reply path, then coordinate.
  network_.cpu(process_.host())
      .execute(params_.traversal_cost,
               process_.guarded([this, sender = msg.sender, raw = msg.payload] {
                 orb::GiopMessage parsed = orb::decode_giop(raw);
                 if (parsed.type != orb::GiopMsgType::kReply || !parsed.reply) return;
                 const std::uint32_t request_id = parsed.reply->request_id;
                 auto it = outstanding_.find(request_id);
                 if (it == outstanding_.end()) {
                   ++duplicate_replies_;
                   return;
                 }
                 Pending& pending = it->second;

                 if (params_.policy == ResponsePolicy::kFirstReply) {
                   complete(request_id, raw);
                   return;
                 }

                 // Majority voting over reply bodies. One vote per replica;
                 // the required majority comes from the freshest view size
                 // replicas report in their FT group-version context.
                 if (pending.voters.contains(sender)) return;
                 pending.voters.insert(sender);
                 for (const auto& sc : parsed.reply->service_contexts) {
                   if (sc.context_id != orb::kFtGroupVersionContextId) continue;
                   orb::CdrReader r(sc.data);
                   (void)r.ulonglong();  // view id
                   const std::uint32_t size = r.ulong();
                   pending.best_view_size = std::max(pending.best_view_size, size);
                 }
                 const std::uint64_t body_hash = fnv1a(parsed.reply->body);
                 const int count = ++pending.votes[body_hash];
                 pending.exemplars.emplace(body_hash, raw);
                 const std::uint32_t view_size = std::max(pending.best_view_size, 1u);
                 if (static_cast<std::uint32_t>(count) >= view_size / 2 + 1) {
                   Payload winner = pending.exemplars[body_hash];
                   complete(request_id, std::move(winner));
                 }
               }));
}

void ClientCoordinator::complete(std::uint32_t request_id, Payload reply) {
  auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) return;
  it->second.retry_timer.cancel();
  it->second.span.note("retries", std::to_string(it->second.retries));
  it->second.span.end();
  outstanding_.erase(it);
  deliver_reply(std::move(reply));
}

}  // namespace vdep::replication
