#include "replication/message_log.hpp"

#include "util/assert.hpp"

namespace vdep::replication {

void MessageLog::append(LoggedRequest entry) {
  bytes_ += entry.giop.size();
  const auto index = entry.index;
  auto [it, inserted] = entries_.emplace(index, std::move(entry));
  VDEP_ASSERT_MSG(inserted, "duplicate log index");
}

void MessageLog::truncate_applied(const std::map<ProcessId, std::uint64_t>& applied) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto ait = applied.find(it->second.request_id.client);
    const bool covered = ait != applied.end() && it->second.request_id.seq <= ait->second;
    if (covered) {
      bytes_ -= it->second.giop.size();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<LoggedRequest> MessageLog::take_all() {
  std::vector<LoggedRequest> out;
  out.reserve(entries_.size());
  // Move each entry out (the shared giop payload changes hands without a
  // refcount round-trip or buffer copy); the hollow map skeleton is then
  // discarded wholesale. bytes_ goes to zero with it — the moved-from
  // payloads no longer contribute.
  for (auto& [index, entry] : entries_) out.push_back(std::move(entry));
  entries_.clear();
  bytes_ = 0;
  return out;
}

std::uint64_t MessageLog::highest_index() const {
  return entries_.empty() ? 0 : entries_.rbegin()->first;
}

void MessageLog::clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace vdep::replication
