// Client-side replicator: coordinates a client's interactions with a server
// replica group (paper Sec. 3.1, "coordinating the client interactions with
// the server replicas").
//
// Plugs into the client ORB as its transport (this *is* the library
// interposition on the client side): it rewrites each outgoing GIOP request
// with an FT_REQUEST service context, multicasts it AGREED into the server
// group, and coordinates the replies that replicas unicast back —
//   first-reply:     accept the first, drop duplicates (trusted replicas);
//   majority-voting: compare reply bodies across replicas and deliver once a
//                    majority of the current view agrees (Byzantine-tolerant
//                    reads, paper Sec. 3.1).
// A retransmission timer makes requests survive primary failovers; replica
// reply caches make the retries idempotent.
#pragma once

#include <map>
#include <set>

#include "gcs/endpoint.hpp"
#include "orb/orb_core.hpp"
#include "replication/types.hpp"

namespace vdep::replication {

enum class ResponsePolicy : std::uint8_t {
  kFirstReply = 0,
  kMajorityVoting = 1,
};

struct ClientCoordinatorParams {
  SimTime traversal_cost;          // interposition cost per message
  SimTime retry_timeout = msec(400);
  int max_retries = 25;
  ResponsePolicy policy = ResponsePolicy::kFirstReply;
  SimTime request_expiration = sec(30);  // FT_REQUEST expiration field

  ClientCoordinatorParams();
};

class ClientCoordinator final : public orb::ClientTransport {
 public:
  ClientCoordinator(net::Network& network, gcs::Daemon& daemon, sim::Process& process,
                    ClientCoordinatorParams params = {});

  void send_request(const orb::ObjectRef& ref, Payload giop) override;
  void cancel(std::uint32_t request_id) override;

  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t duplicate_replies() const { return duplicate_replies_; }
  [[nodiscard]] std::uint64_t expired_requests() const { return expired_; }
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }
  [[nodiscard]] gcs::Endpoint& endpoint() { return *endpoint_; }

 private:
  struct Pending {
    GroupId group;
    Payload wire;  // envelope frame, encoded once and shared across retries
    int retries = 0;
    sim::EventHandle retry_timer;
    // Open from first transmit to completion; retries and the final outcome
    // are recorded as notes, so a failover shows as one long coord.send span.
    obs::Span span;
    // Voting state.
    std::map<std::uint64_t, int> votes;          // body hash -> count
    std::map<std::uint64_t, Payload> exemplars;  // body hash -> a reply
    std::set<ProcessId> voters;
    std::uint32_t best_view_size = 0;
  };

  void on_private(const gcs::PrivateMessage& msg);
  void transmit(std::uint32_t request_id, Pending& pending);
  void arm_retry(std::uint32_t request_id);
  void complete(std::uint32_t request_id, Payload reply);

  net::Network& network_;
  sim::Process& process_;
  ClientCoordinatorParams params_;
  std::unique_ptr<gcs::Endpoint> endpoint_;
  std::map<std::uint32_t, Pending> outstanding_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicate_replies_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace vdep::replication
