#include "replication/cold_passive.hpp"

#include "replication/replicator.hpp"

namespace vdep::replication {

bool ColdPassiveEngine::responder() const {
  return r_.my_rank() == 0 && !r_.cold_launch_pending();
}

void ColdPassiveEngine::on_request(const RequestRecord& rec) {
  if (responder()) {
    r_.execute_request(rec, /*send_reply=*/true);
    const auto every = r_.params().checkpoint_every_requests;
    const auto& view = r_.current_view();
    if (every > 0 && view && view->size() > 1 &&
        r_.executions_since_checkpoint() >= every) {
      r_.take_checkpoint();
    }
  } else {
    // Dormant backups (and a still-launching promotee) just log.
    r_.log_request(rec);
  }
}

void ColdPassiveEngine::on_checkpoint(const CheckpointMsg& msg) {
  // Cold: retain without applying; install happens at launch.
  r_.store_checkpoint(msg);
}

void ColdPassiveEngine::on_view_change(const gcs::View& old_view,
                                       const gcs::View& new_view) {
  const ProcessId self = r_.process().id();
  const bool was_head = !old_view.members.empty() && old_view.members.front().process == self;
  const bool is_head = !new_view.members.empty() && new_view.members.front().process == self;
  if (is_head && !was_head) r_.promote_cold();
}

void ColdPassiveEngine::on_timer() {
  if (!responder()) return;
  const auto& view = r_.current_view();
  if (view && view->size() > 1) {
    r_.take_checkpoint();
  } else {
    r_.take_local_checkpoint();
  }
}

}  // namespace vdep::replication
