#include "replication/hybrid.hpp"

#include "replication/replicator.hpp"

namespace vdep::replication {

bool HybridEngine::rank_in_core(std::size_t rank, std::size_t core) {
  return rank < core;
}

bool HybridEngine::in_core() const {
  return rank_in_core(r_.my_rank(), r_.params().hybrid_active_core);
}

bool HybridEngine::responder() const { return in_core(); }

void HybridEngine::on_request(const RequestRecord& rec) {
  if (in_core()) {
    r_.execute_request(rec, /*send_reply=*/true);
  } else {
    r_.log_request(rec);
  }
}

void HybridEngine::on_checkpoint(const CheckpointMsg& msg) {
  // Core replicas are current; observers install eagerly (warm semantics).
  if (!in_core()) r_.install_checkpoint(msg);
}

void HybridEngine::on_view_change(const gcs::View& old_view, const gcs::View& new_view) {
  const ProcessId self = r_.process().id();
  const auto core = r_.params().hybrid_active_core;
  const auto old_rank = old_view.rank_of(self);
  const auto new_rank = new_view.rank_of(self);
  if (!new_rank) return;
  const bool was_core = old_rank && rank_in_core(*old_rank, core);
  const bool is_core = rank_in_core(*new_rank, core);
  if (is_core && !was_core) {
    // Ascending into the core: catch up from the log. Reply while replaying
    // only when we are the new head (other core members may all be gone).
    r_.replay_log(/*send_replies=*/*new_rank == 0);
  }
}

void HybridEngine::on_timer() {
  // Observers are third-tier redundancy: the core already absorbs single
  // failures instantly, so they are kept warm on a relaxed cadence — every
  // few checkpoint-interval ticks, not per batch of requests. That is what
  // keeps hybrid cheaper on the wire than both active and warm passive.
  const auto& view = r_.current_view();
  if (r_.my_rank() != 0 || !view) return;
  if (++ticks_ % kObserverSyncEvery != 0) return;
  if (view->size() > r_.params().hybrid_active_core) {
    r_.take_checkpoint();
  } else {
    r_.take_local_checkpoint();
  }
}

}  // namespace vdep::replication
