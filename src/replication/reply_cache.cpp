#include "replication/reply_cache.hpp"

#include "util/assert.hpp"

namespace vdep::replication {

ReplyCache::ReplyCache(std::size_t capacity) : capacity_(capacity) {
  VDEP_ASSERT(capacity > 0);
}

void ReplyCache::put(const RequestId& id, Payload reply_giop) {
  auto [it, inserted] = entries_.emplace(id, std::move(reply_giop));
  if (!inserted) {
    // Replay after failover can re-record a reply; deterministic execution
    // means the bytes match, so keep the original.
    return;
  }
  order_.push_back(id);
  evict_to_capacity();
}

void ReplyCache::evict_to_capacity() {
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

std::optional<Payload> ReplyCache::get(const RequestId& id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool ReplyCache::contains(const RequestId& id) const { return entries_.contains(id); }

Bytes ReplyCache::serialize() const { return serialize_recent(order_.size()); }

Bytes ReplyCache::serialize_recent(std::size_t max_entries) const {
  const std::size_t n = std::min(max_entries, order_.size());
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(n));
  auto it = order_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(order_.size() - n));
  for (; it != order_.end(); ++it) {
    w.u64(it->client.value());
    w.u64(it->seq);
    w.bytes(entries_.at(*it));
  }
  return std::move(w).take();
}

void ReplyCache::restore(const Payload& raw) {
  clear();
  ByteReader r(raw.owner(), raw);
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    RequestId id;
    id.client = ProcessId{r.u64()};
    id.seq = r.u64();
    put(id, read_payload(r));
  }
}

void ReplyCache::clear() {
  entries_.clear();
  order_.clear();
}

}  // namespace vdep::replication
