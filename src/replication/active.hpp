// Active replication — the state-machine approach (Schneider): every replica
// executes every totally-ordered request and replies; the client keeps the
// first reply (or majority-votes when Byzantine failures are a concern).
// Fast response and recovery — no checkpointing or rollback — at the price
// of k-fold processing and reply bandwidth.
#pragma once

#include "replication/engine.hpp"

namespace vdep::replication {

class ActiveEngine final : public ReplicationEngine {
 public:
  using ReplicationEngine::ReplicationEngine;

  [[nodiscard]] ReplicationStyle style() const override {
    return ReplicationStyle::kActive;
  }
  [[nodiscard]] bool responder() const override { return true; }

  void on_request(const RequestRecord& rec) override;
  void on_checkpoint(const CheckpointMsg& msg) override;
  void on_view_change(const gcs::View& old_view, const gcs::View& new_view) override;
};

}  // namespace vdep::replication
