#include "replication/replicator.hpp"

#include <algorithm>

#include "orb/giop.hpp"
#include "replication/active.hpp"
#include "replication/cold_passive.hpp"
#include "replication/hybrid.hpp"
#include "replication/semi_active.hpp"
#include "replication/warm_passive.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::replication {

Replicator::Replicator(net::Network& network, gcs::Daemon& daemon,
                       sim::Process& process, orb::ServerOrb& orb, Checkpointable& app,
                       GroupId group, ReplicatorParams params)
    : network_(network),
      daemon_(daemon),
      process_(process),
      orb_(orb),
      app_(app),
      group_(group),
      params_(params),
      reply_cache_(params.reply_cache_capacity) {}

Replicator::~Replicator() = default;

void Replicator::start(ReplicationStyle style, bool join_existing) {
  VDEP_ASSERT_MSG(endpoint_ == nullptr, "start() called twice");
  join_existing_ = join_existing;
  endpoint_ = std::make_unique<gcs::Endpoint>(daemon_, process_);
  endpoint_->set_message_handler(
      [this](const gcs::GroupMessage& m) { on_group_message(m); });
  // Views go through the same per-message CPU pipeline as data: the group
  // layer delivers them in total order, and charging both through one FIFO
  // queue keeps that order inside the replicator. (A view that overtook a
  // SAFE checkpoint here once caused double-execution on promotion.)
  endpoint_->set_view_handler([this](const gcs::View& v) {
    network_.cpu(process_.host())
        .execute(params_.traversal_cost, process_.guarded([this, v] { on_view(v); }));
  });

  engine_ = make_engine(style);
  endpoint_->join(group_);
  arm_engine_timer();
}

void Replicator::stop() {
  if (stopped_ || endpoint_ == nullptr) return;
  stopped_ = true;
  engine_timer_.cancel();
  endpoint_->leave(group_);
}

ReplicationStyle Replicator::style() const {
  VDEP_ASSERT(engine_ != nullptr);
  return engine_->style();
}

std::size_t Replicator::my_rank() const {
  if (!view_) return SIZE_MAX;
  return view_->rank_of(process_.id()).value_or(SIZE_MAX);
}

bool Replicator::is_responder() const { return engine_ != nullptr && engine_->responder(); }

double Replicator::observed_request_rate() { return rate_.rate(process_.now()); }

void Replicator::set_checkpoint_interval(SimTime interval) {
  VDEP_ASSERT(interval > kTimeZero);
  params_.checkpoint_interval = interval;
  arm_engine_timer();
}

void Replicator::set_checkpoint_anchor_interval(std::uint32_t interval) {
  VDEP_ASSERT_MSG(interval >= 1, "anchor interval must be >= 1");
  params_.checkpoint_anchor_interval = interval;
}

void Replicator::arm_engine_timer() {
  engine_timer_.cancel();
  engine_timer_ = process_.post(params_.checkpoint_interval, [this] {
    if (engine_ != nullptr && !uninitialized_) engine_->on_timer();
    arm_engine_timer();
  });
}

// --- group message pipeline -----------------------------------------------------

void Replicator::on_group_message(const gcs::GroupMessage& msg) {
  // Interposition cost: one replicator traversal per inbound message.
  network_.cpu(process_.host())
      .execute(params_.traversal_cost, process_.guarded([this, msg] {
        // Re-establish the message's causal context (captured on the wire)
        // for everything the handlers do synchronously.
        obs::Tracer::Scope scope(process_.kernel().tracer(), msg.trace);
        RepEnvelope env = RepEnvelope::decode(msg.payload);
        switch (env.type) {
          case RepEnvelope::Type::kRequest:
            handle_request_envelope(msg, std::move(env.payload));
            return;
          case RepEnvelope::Type::kCheckpoint:
            handle_checkpoint(CheckpointMsg::decode(env.payload));
            return;
          case RepEnvelope::Type::kSwitch:
            handle_switch(SwitchMsg::decode(env.payload));
            return;
          case RepEnvelope::Type::kStateRequest:
            // The current head of the group donates state via a checkpoint
            // (or an anchor + delta bundle when a chain is retained).
            if (!uninitialized_ && my_rank() == 0) donate_state();
            return;
          case RepEnvelope::Type::kCheckpointDelta:
            handle_checkpoint(
                CheckpointMsg::decode(env.payload, CheckpointMsg::Kind::kDelta));
            return;
          case RepEnvelope::Type::kStateTransfer:
            handle_state_transfer(StateTransferMsg::decode(env.payload));
            return;
          case RepEnvelope::Type::kAnchorRequest:
            // A backup hit a chain gap: the head pins a full anchor. The
            // latch survives an in-flight round (served when it completes).
            if (!uninitialized_ && my_rank() == 0) take_checkpoint(/*force_full=*/true);
            return;
        }
      }));
}

void Replicator::handle_request_envelope(const gcs::GroupMessage& msg, Payload giop) {
  ++request_index_;
  rate_.record(process_.now());

  orb::GiopMessage parsed = orb::decode_giop(giop);
  VDEP_ASSERT_MSG(parsed.request.has_value(), "non-request GIOP in request envelope");
  auto ft = orb::FtRequestContext::from_contexts(parsed.request->service_contexts);
  VDEP_ASSERT_MSG(ft.has_value(), "replicated request without FT_REQUEST context");

  RequestRecord rec;
  rec.index = request_index_;
  rec.rid = RequestId{ft->client, ft->retention_id};
  rec.client_daemon = ft->client_daemon;
  rec.expiration = ft->expiration;
  rec.giop = std::move(giop);
  // The injected GIOP trace context survives the group layer's re-framing;
  // the group message's own context is the fallback.
  rec.trace = orb::trace_from_contexts(parsed.request->service_contexts);
  if (!rec.trace.valid()) rec.trace = msg.trace;

  if (uninitialized_) {
    if (rec.trace.valid()) {
      auto span = process_.kernel().tracer().start_span(
          "rep.enqueue", "replication", process_.name(), rec.trace);
      span.note("reason", "state_transfer_pending");
    }
    log_request(rec);
    return;
  }
  if (holding_) {
    if (rec.trace.valid()) {
      auto span = process_.kernel().tracer().start_span(
          "rep.enqueue", "replication", process_.name(), rec.trace);
      span.note("reason", "quiescence_hold");
    }
    holdq_.push_back(std::move(rec));
    return;
  }
  engine_->on_request(rec);
}

void Replicator::handle_checkpoint(const CheckpointMsg& msg) {
  if (outstanding_checkpoint_ && *outstanding_checkpoint_ == msg.checkpoint_id) {
    // Our own checkpoint completed the SAFE round: every member daemon holds
    // it. Quiescence ends here (the paper's checkpoint blackout).
    outstanding_checkpoint_.reset();
    checkpoint_span_.note("checkpoint_id", std::to_string(msg.checkpoint_id));
    checkpoint_span_.end();
    if (switch_awaiting_checkpoint_) {
      complete_switch();
      finish_checkpoint_round();
      return;
    }
    holding_ = false;
    drain_holdq();
    finish_checkpoint_round();
    return;
  }

  if (uninitialized_) {
    // A joiner cannot apply a delta (it has no base state); it keeps waiting
    // for the donation, which always carries a full anchor.
    if (msg.kind == CheckpointMsg::Kind::kDelta) return;
    // The state transfer we asked for. When a style switch raced with our
    // catch-up, this same checkpoint is also the switch's final checkpoint —
    // complete it, or we would hold requests forever waiting for a second
    // one that never comes.
    install_checkpoint(msg);
    // A dormant cold joiner also retains the snapshot, so later deltas have
    // a stored chain tip to extend instead of forcing an anchor re-request.
    if (engine_ != nullptr && engine_->style() == ReplicationStyle::kColdPassive &&
        !engine_->responder()) {
      stored_checkpoint_ = msg;
      stored_deltas_.clear();
    }
    uninitialized_ = false;
    replay_log(!params_.quiet_joiner_replay);
    log_info(process_.now(), "replicator",
             process_.name() + " state transfer complete");
    if (switch_awaiting_checkpoint_) complete_switch();
    return;
  }

  if (switch_awaiting_checkpoint_ && msg.kind == CheckpointMsg::Kind::kFull) {
    // Fig. 5, case warm-passive -> active: the final checkpoint before the
    // switch. Backups synchronize their state with the primary, then switch.
    // (Switch finals are always full anchors; a delta delivered while
    // awaiting is an earlier in-flight cut and takes the normal engine path
    // below — it must not complete the switch.)
    install_checkpoint(msg);
    complete_switch();
    return;
  }

  engine_->on_checkpoint(msg);
}

void Replicator::handle_state_transfer(const StateTransferMsg& msg) {
  CheckpointMsg anchor = CheckpointMsg::decode(msg.anchor, CheckpointMsg::Kind::kFull);
  std::vector<CheckpointMsg> deltas;
  deltas.reserve(msg.deltas.size());
  for (const auto& d : msg.deltas) {
    deltas.push_back(CheckpointMsg::decode(d, CheckpointMsg::Kind::kDelta));
  }
  const std::uint64_t tip =
      deltas.empty() ? anchor.checkpoint_id : deltas.back().delta_epoch;

  if (outstanding_checkpoint_ && *outstanding_checkpoint_ == tip) {
    // Our own donation bundle came back stable: the SAFE round is over.
    outstanding_checkpoint_.reset();
    checkpoint_span_.note("checkpoint_id", std::to_string(tip));
    checkpoint_span_.end();
    if (switch_awaiting_checkpoint_) {
      complete_switch();
      finish_checkpoint_round();
      return;
    }
    holding_ = false;
    drain_holdq();
    finish_checkpoint_round();
    return;
  }

  if (uninitialized_) {
    // The donation we asked for: install the whole chain — anchor first,
    // then the delta suffix in order. The tip covers every request ordered
    // before the donor's cut; the log replay below covers the rest.
    install_checkpoint(anchor);
    for (const auto& d : deltas) install_checkpoint(d);
    if (engine_ != nullptr && engine_->style() == ReplicationStyle::kColdPassive &&
        !engine_->responder()) {
      stored_checkpoint_ = std::move(anchor);
      stored_deltas_ = std::move(deltas);
    }
    uninitialized_ = false;
    replay_log(!params_.quiet_joiner_replay);
    log_info(process_.now(), "replicator",
             process_.name() + " state transfer complete (chain of " +
                 std::to_string(1 + msg.deltas.size()) + ")");
    if (switch_awaiting_checkpoint_) complete_switch();
    return;
  }

  if (switch_awaiting_checkpoint_) {
    install_checkpoint(anchor);
    for (const auto& d : deltas) install_checkpoint(d);
    complete_switch();
    return;
  }

  // Initialized bystanders treat each chain part like an ordinary checkpoint
  // delivery: warm backups install (rolling back to the anchor and forward to
  // the tip — same final state), cold backups retain, active styles ignore.
  engine_->on_checkpoint(anchor);
  for (const auto& d : deltas) engine_->on_checkpoint(d);
}

void Replicator::handle_switch(const SwitchMsg& msg) {
  VDEP_ASSERT(engine_ != nullptr);
  // Step I: duplicate switch messages are discarded.
  if (switch_target_.has_value() || msg.target == engine_->style()) return;

  switch_target_ = msg.target;
  switch_started_ = process_.now();
  // Parented under the initiator's decision span (the switch multicast
  // carried its context, re-established by on_group_message's scope).
  switch_span_ = process_.kernel().tracer().start_child(
      "rep.switch", "replication", process_.name());
  switch_span_.note("from", to_string(engine_->style()));
  switch_span_.note("to", to_string(msg.target));
  log_info(process_.now(), "replicator",
           process_.name() + " switch " + to_string(engine_->style()) + " -> " +
               to_string(msg.target));

  if (needs_final_checkpoint(engine_->style(), msg.target)) {
    // Step II, case 1 (passive -> active): everyone enqueues application
    // messages; the primary sends one more checkpoint; backups wait for it.
    holding_ = true;
    switch_awaiting_checkpoint_ = true;
    if (engine_->responder()) {
      obs::Tracer::Scope scope(process_.kernel().tracer(), switch_span_.context());
      // Always a full anchor: cold backups about to take executing roles may
      // hold arbitrarily stale retained state a delta could not extend.
      take_checkpoint(/*force_full=*/true);
    }
  } else {
    // Step II, case 2 (active -> passive, or within-family change): the
    // replicas share identical state; the new roles derive deterministically
    // from the current view, so the switch completes at this order point.
    complete_switch();
  }
}

void Replicator::complete_switch() {
  VDEP_ASSERT(switch_target_.has_value());
  const ReplicationStyle from = engine_->style();
  const ReplicationStyle to = *switch_target_;
  ensure_cold_applied();
  engine_ = make_engine(to);
  switch_target_.reset();
  switch_awaiting_checkpoint_ = false;
  engine_->on_start();
  switch_span_.end();
  switch_history_.push_back(SwitchRecord{switch_started_, process_.now(), from, to});
  log_info(process_.now(), "replicator",
           process_.name() + " now " + to_string(to) +
               (engine_->responder() ? " (responder)" : ""));
  if (on_style_changed_) on_style_changed_(to);
  holding_ = false;
  drain_holdq();
}

void Replicator::drain_holdq() {
  auto held = std::move(holdq_);
  holdq_.clear();
  for (auto& rec : held) {
    if (holding_) {
      holdq_.push_back(std::move(rec));  // re-held (nested checkpoint)
    } else {
      engine_->on_request(rec);
    }
  }
}

// --- views -------------------------------------------------------------------------

void Replicator::on_view(const gcs::View& view) {
  const std::optional<gcs::View> old = view_;
  view_ = view;
  // The checkpoint taker we asked for an anchor may be among the departed;
  // allow a fresh request the next time a chain gap shows up.
  anchor_request_outstanding_ = false;

  const bool joined_now =
      view.contains(process_.id()) && (!old || !old->contains(process_.id()));
  if (joined_now) {
    if (view.size() > 1 && join_existing_) {
      uninitialized_ = true;
      request_state_transfer();
    }
    engine_->on_start();
  }

  // Fig. 5, step III case 1: if the primary crashed before its final
  // checkpoint, the backups roll forward from their logs instead.
  if (switch_awaiting_checkpoint_ && old) {
    const bool old_head_gone =
        !old->members.empty() && !view.contains(old->members.front().process);
    if (old_head_gone) {
      log_info(process_.now(), "replicator",
               process_.name() + " switch rollback: primary crashed before checkpoint");
      switch_span_.note("rollback", "primary_crashed_before_checkpoint");
      ensure_cold_applied();
      replay_log(true);
      complete_switch();
      return;
    }
  }

  if (old && engine_ != nullptr && !uninitialized_) {
    engine_->on_view_change(*old, view);
  }
}

void Replicator::request_state_transfer() {
  // Roots its own trace: the donor's checkpoint round parents under it via
  // the multicast's context.
  obs::Span span = process_.kernel().tracer().start_span(
      "rep.state_request", "replication", process_.name());
  obs::Tracer::Scope scope(process_.kernel().tracer(), span.context());
  RepEnvelope env{RepEnvelope::Type::kStateRequest, {}};
  endpoint_->multicast(group_, gcs::ServiceType::kAgreed, env.encode());
}

// --- execution ----------------------------------------------------------------------

void Replicator::execute_request(const RequestRecord& rec, bool send_reply) {
  obs::Tracer& tracer = process_.kernel().tracer();
  // FT-CORBA request expiration: the client has given up on this request (it
  // stopped retrying long ago), so executing it would only waste the cycle.
  // Deterministic across replicas: expiration and delivery order are shared.
  if (rec.expiration > kTimeZero && process_.now() > rec.expiration) {
    ++expired_dropped_;
    if (rec.trace.valid()) {
      auto span = tracer.start_span("rep.execute", "replication", process_.name(),
                                    rec.trace);
      span.note("outcome", "expired_drop");
    }
    return;
  }
  // Exactly-once: retention ids are per-client monotone, so anything at or
  // below the applied frontier is a duplicate (client retransmission,
  // group-layer replay, or already covered by an installed checkpoint).
  auto& frontier = applied_rid_[rec.rid.client];
  if (rec.rid.seq <= frontier && !params_.skip_reply_dedup) {
    obs::Span span;
    if (rec.trace.valid()) {
      span = tracer.start_span("rep.execute", "replication", process_.name(),
                               rec.trace);
    }
    if (send_reply) {
      if (auto cached = reply_cache_.get(rec.rid)) {
        span.note("outcome", "dedup_cache_hit");
        send_reply_to_client(rec, *cached);
      } else {
        span.note("outcome", "dedup_cache_miss");
      }
      // Cache miss: the original execution is still in flight (its reply
      // will go out when it completes) or the reply aged out of the cache —
      // the client's next retry reaches a fresher cache.
    } else {
      span.note("outcome", "dedup_suppressed");
    }
    return;
  }
  frontier = std::max(frontier, rec.rid.seq);

  quiescence_.begin_execution();
  ++executed_count_;
  ++executions_since_checkpoint_;

  // Open until the servant's reply comes back through the ORB.
  obs::Span exec_span;
  if (rec.trace.valid()) {
    exec_span = tracer.start_span("rep.execute", "replication", process_.name(),
                                  rec.trace);
    exec_span.note("outcome", "executed");
  }
  obs::Tracer::Scope scope(tracer, exec_span.active() ? exec_span.context()
                                                      : rec.trace);
  std::shared_ptr<obs::Span> open;
  if (exec_span.active()) open = std::make_shared<obs::Span>(std::move(exec_span));
  orb_.handle_request(rec.giop, [this, open, rid = rec.rid,
                                 client_daemon = rec.client_daemon,
                                 trace = rec.trace,
                                 send_reply](Payload reply_giop) {
    if (open) open->end();
    // The cache entry and the reply in flight share one buffer.
    reply_cache_.put(rid, reply_giop);
    if (send_reply) {
      RequestRecord stub;
      stub.rid = rid;
      stub.client_daemon = client_daemon;
      stub.trace = trace;
      send_reply_to_client(stub, reply_giop);
    }
    quiescence_.end_execution();
  });
}

void Replicator::log_request(const RequestRecord& rec) {
  log_.append(LoggedRequest{rec.index, rec.rid, rec.client_daemon, rec.expiration,
                            rec.giop, rec.trace});
}

void Replicator::send_reply_to_client(const RequestRecord& rec, const Payload& reply_giop) {
  // Interposition cost on the way out, then unicast to the client's daemon.
  network_.cpu(process_.host())
      .execute(params_.traversal_cost,
               process_.guarded([this, rid = rec.rid, daemon = rec.client_daemon,
                                 trace = rec.trace,
                                 reply = augment_reply(reply_giop)]() mutable {
                 obs::Span span;
                 if (trace.valid()) {
                   span = process_.kernel().tracer().start_span(
                       "rep.reply", "replication", process_.name(), trace);
                 }
                 obs::Tracer::Scope scope(process_.kernel().tracer(),
                                          span.active() ? span.context() : trace);
                 endpoint_->unicast(rid.client, daemon, std::move(reply));
               }));
}

Bytes Replicator::augment_reply(const Payload& reply_giop) const {
  orb::GiopMessage parsed = orb::decode_giop(reply_giop);
  VDEP_ASSERT(parsed.reply.has_value());
  orb::CdrWriter w;
  w.ulonglong(view_ ? view_->view_id : 0);
  w.ulong(view_ ? static_cast<std::uint32_t>(view_->size()) : 0);
  w.ulong(static_cast<std::uint32_t>(std::min<std::size_t>(my_rank(), 0xffffffff)));
  parsed.reply->service_contexts.push_back(
      orb::ServiceContext{orb::kFtGroupVersionContextId, std::move(w).take()});
  return parsed.reply->encode();
}

// --- checkpointing --------------------------------------------------------------------

void Replicator::take_checkpoint(bool force_full) {
  if (force_full) anchor_requested_ = true;  // latch survives an open round
  // One round at a time: either a cut is already multicast (outstanding) or
  // a quiescence waiter is about to cut (pending). The force_full latch
  // still applies to whichever cut fires next.
  if (outstanding_checkpoint_.has_value() || cut_pending_) return;
  cut_pending_ = true;
  holding_ = true;
  // Open across quiescence wait + serialization + the SAFE round; ends when
  // our own checkpoint message comes back stable (handle_checkpoint). Parent
  // is whatever caused the round: timer, switch, or a backup's anchor request.
  if (!checkpoint_span_.active()) {
    checkpoint_span_ = process_.kernel().tracer().start_child(
        "rep.checkpoint", "replication", process_.name());
  }
  quiescence_.when_quiescent(
      process_.guarded([this] { cut_and_multicast(/*donation=*/false); }));
}

void Replicator::donate_state() {
  if (outstanding_checkpoint_.has_value() || cut_pending_) {
    pending_donation_ = true;  // served when the open round completes
    return;
  }
  cut_pending_ = true;
  holding_ = true;
  if (!checkpoint_span_.active()) {
    checkpoint_span_ = process_.kernel().tracer().start_child(
        "rep.checkpoint", "replication", process_.name());
  }
  quiescence_.when_quiescent(
      process_.guarded([this] { cut_and_multicast(/*donation=*/true); }));
}

bool Replicator::can_cut_delta() const {
  return !anchor_requested_ && params_.checkpoint_anchor_interval > 1 &&
         app_.supports_delta() && last_cut_id_.has_value() &&
         deltas_since_anchor_ + 1 < params_.checkpoint_anchor_interval;
}

void Replicator::cut_and_multicast(bool donation) {
  cut_pending_ = false;
  ++checkpoint_counter_;
  executions_since_checkpoint_ = 0;
  const std::uint64_t id = (process_.id().value() << 20) | checkpoint_counter_;
  CheckpointMsg msg;
  msg.checkpoint_id = id;
  msg.applied = applied_rid_;
  msg.reply_cache = reply_cache_.serialize_recent(params_.checkpoint_reply_entries);

  // Cut a dirty-set delta when the cadence knob allows it and the app can
  // still answer for the previous cut (a restore in between makes it full).
  std::optional<std::size_t> delta_bytes;
  if (can_cut_delta()) {
    if (auto delta = app_.snapshot_delta(last_cut_app_epoch_)) {
      msg.kind = CheckpointMsg::Kind::kDelta;
      msg.base_epoch = *last_cut_id_;
      msg.delta_epoch = id;
      msg.app_state = std::move(*delta);
      delta_bytes = msg.app_state.size();
    }
  }
  const bool is_delta = msg.kind == CheckpointMsg::Kind::kDelta;
  if (!is_delta) msg.app_state = app_.snapshot();
  last_cut_app_epoch_ = app_.cut_epoch();
  last_cut_id_ = id;
  installed_epoch_ = id;

  // Encode once; the chain retains the same buffers a later state-transfer
  // bundle ships (zero-copy fan-out).
  Payload enc = msg.encode();
  if (is_delta) {
    chain_deltas_.push_back(enc);
    ++deltas_since_anchor_;
    ++checkpoints_delta_;
  } else {
    chain_anchor_ = enc;
    chain_deltas_.clear();
    deltas_since_anchor_ = 0;
    anchor_requested_ = false;
    ++checkpoints_full_;
  }
  checkpoint_bytes_ += enc.size();

  outstanding_checkpoint_ = id;
  if (on_checkpoint_) on_checkpoint_(id);
  checkpoint_span_.note("kind", is_delta ? "delta" : "full");
  checkpoint_span_.note("state_bytes", std::to_string(msg.app_state.size()));
  if (is_delta) checkpoint_span_.note("base_epoch", std::to_string(msg.base_epoch));
  if (donation) checkpoint_span_.note("donation", "1");

  // Serialization occupies the CPU; the multicast submission queues behind
  // it on the same host CPU, so the cost delays the checkpoint naturally. A
  // delta only pays for the dirty set, not the whole state — the point of
  // incremental checkpointing (the blackout shrinks with the dirty fraction).
  network_.cpu(process_.host())
      .execute(checkpoint_cpu_time(app_.state_size(), delta_bytes,
                                   params_.snapshot_bytes_per_sec),
               [] {});
  obs::Tracer::Scope scope(process_.kernel().tracer(), checkpoint_span_.context());
  if (donation && is_delta) {
    // A joiner cannot use a bare delta: ship the retained anchor plus the
    // whole delta suffix (ending in the cut just taken). Initialized members
    // consume only the parts that continue their own chains.
    StateTransferMsg bundle;
    bundle.anchor = chain_anchor_;
    bundle.deltas = chain_deltas_;
    RepEnvelope env{RepEnvelope::Type::kStateTransfer, bundle.encode()};
    endpoint_->multicast(group_, gcs::ServiceType::kSafe, env.encode());
  } else {
    RepEnvelope env{is_delta ? RepEnvelope::Type::kCheckpointDelta
                             : RepEnvelope::Type::kCheckpoint,
                    std::move(enc)};
    endpoint_->multicast(group_, gcs::ServiceType::kSafe, env.encode());
  }
}

void Replicator::finish_checkpoint_round() {
  if (stopped_ || uninitialized_ || engine_ == nullptr) return;
  if (pending_donation_) {
    pending_donation_ = false;
    if (my_rank() == 0) {
      donate_state();
      return;
    }
  }
  if (anchor_requested_ && my_rank() == 0 && !switch_target_.has_value()) {
    take_checkpoint(/*force_full=*/true);
  }
}

void Replicator::request_anchor() {
  if (anchor_request_outstanding_) return;  // one in flight is enough
  anchor_request_outstanding_ = true;
  ++anchor_requests_;
  log_info(process_.now(), "replicator",
           process_.name() + " checkpoint chain gap: requesting full anchor");
  if (process_.kernel().tracer().enabled()) {
    auto span = process_.kernel().tracer().start_child("rep.anchor_request",
                                                       "replication", process_.name());
    span.note("installed_epoch",
              installed_epoch_ ? std::to_string(*installed_epoch_) : "none");
  }
  RepEnvelope env{RepEnvelope::Type::kAnchorRequest, {}};
  endpoint_->multicast(group_, gcs::ServiceType::kAgreed, env.encode());
}

void Replicator::take_local_checkpoint() {
  if (outstanding_checkpoint_.has_value() || holding_) return;
  holding_ = true;
  quiescence_.when_quiescent(process_.guarded([this] {
    obs::Span span = process_.kernel().tracer().start_child(
        "rep.checkpoint", "replication", process_.name());
    span.note("local", "1");
    ++checkpoint_counter_;
    executions_since_checkpoint_ = 0;
    CheckpointMsg msg;
    msg.checkpoint_id = (process_.id().value() << 20) | checkpoint_counter_;
    msg.applied = applied_rid_;
    msg.app_state = app_.snapshot();
    msg.reply_cache = reply_cache_.serialize_recent(params_.checkpoint_reply_entries);
    if (on_checkpoint_) on_checkpoint_(msg.checkpoint_id);
    stored_checkpoint_ = std::move(msg);
    stored_deltas_.clear();
    network_.cpu(process_.host())
        .execute(snapshot_cpu_time(app_.state_size(), params_.snapshot_bytes_per_sec),
                 process_.guarded([this] {
                   holding_ = false;
                   drain_holdq();
                 }));
  }));
}

void Replicator::install_checkpoint(const CheckpointMsg& msg) {
  // Installing over in-flight executions would let queued work re-apply
  // requests the snapshot already contains; the delivery pipeline guarantees
  // installs only happen on quiescent (non-executing) replicas.
  VDEP_ASSERT_MSG(quiescence_.quiescent(), "checkpoint install while executing");
  const bool is_delta = msg.kind == CheckpointMsg::Kind::kDelta;
  if (is_delta) {
    // Checkpoint ids are (pid << 20 | counter): monotone per incarnation but
    // NOT numerically ordered across takers, so chain checks are equality
    // only. A delta we already hold is a duplicate; one whose base is not
    // exactly our position is a gap — skip it and ask for a full anchor
    // (installing it anyway would corrupt the state undetectably).
    if (installed_epoch_ && *installed_epoch_ == msg.delta_epoch) return;
    if (!installed_epoch_ || *installed_epoch_ != msg.base_epoch) {
      request_anchor();
      return;
    }
  }
  if (process_.kernel().tracer().enabled()) {
    auto span = process_.kernel().tracer().start_child("rep.install", "replication",
                                                       process_.name());
    span.note("kind", is_delta ? "delta" : "full");
    span.note("checkpoint_id", std::to_string(msg.checkpoint_id));
    span.note("state_bytes", std::to_string(msg.app_state.size()));
  }
  if (is_delta) {
    app_.apply_delta(msg.app_state);
    ++installs_delta_;
  } else {
    app_.restore(msg.app_state);
    ++installs_full_;
    anchor_request_outstanding_ = false;  // the anchor we asked for arrived
  }
  reply_cache_.restore(msg.reply_cache);
  // The state now *is* the snapshot (or the snapshot plus this delta); the
  // applied frontier must match it, and any checkpoint retained for a cold
  // launch is superseded.
  applied_rid_ = msg.applied;
  log_.truncate_applied(msg.applied);
  installed_epoch_ = msg.checkpoint_id;
  const std::size_t state_size = msg.app_state.size();
  // `msg` may alias `*stored_checkpoint_` / `stored_deltas_` (cold launch
  // installs the retained chain), so the supersede must come after the last
  // read of `msg`.
  stored_checkpoint_.reset();
  stored_deltas_.clear();
  // Our own cut lineage (as a past or future checkpoint taker) is superseded
  // by the installed state: the next cut we take must be a full anchor.
  last_cut_id_.reset();
  chain_anchor_ = Payload();
  chain_deltas_.clear();
  deltas_since_anchor_ = 0;
  // Deserialization cost: occupy the CPU (delays whatever comes next). A
  // delta costs its own (dirty-set) bytes, not the full state.
  network_.cpu(process_.host())
      .execute(snapshot_cpu_time(state_size, params_.snapshot_bytes_per_sec), [] {});
}

void Replicator::store_checkpoint(const CheckpointMsg& msg) {
  if (msg.kind == CheckpointMsg::Kind::kFull) {
    stored_checkpoint_ = msg;
    stored_deltas_.clear();
    anchor_request_outstanding_ = false;
  } else {
    // Retain a delta only if it extends the stored chain tip; otherwise this
    // replica's retained state can no longer reach the group's frontier and
    // it must re-anchor. The log is deliberately NOT truncated on a rejected
    // delta — truncating against a checkpoint we do not hold would lose the
    // only copy of those requests.
    if (!stored_checkpoint_.has_value()) {
      request_anchor();
      return;
    }
    const std::uint64_t tip = stored_deltas_.empty()
                                  ? stored_checkpoint_->checkpoint_id
                                  : stored_deltas_.back().delta_epoch;
    if (msg.delta_epoch == tip) return;  // duplicate (e.g. re-sent in a bundle)
    if (msg.base_epoch != tip) {
      request_anchor();
      return;
    }
    stored_deltas_.push_back(msg);
  }
  log_.truncate_applied(msg.applied);
}

void Replicator::install_stored_chain() {
  if (!stored_checkpoint_.has_value()) return;
  // Move the chain out first: install_checkpoint() clears the stored members.
  CheckpointMsg anchor = std::move(*stored_checkpoint_);
  std::vector<CheckpointMsg> deltas = std::move(stored_deltas_);
  stored_checkpoint_.reset();
  stored_deltas_.clear();
  install_checkpoint(anchor);
  // Each retained delta was chain-checked on store, so the whole suffix
  // installs without gaps.
  for (const auto& d : deltas) install_checkpoint(d);
}

void Replicator::replay_log(bool send_replies) {
  for (auto& e : log_.take_all()) {
    RequestRecord rec;
    rec.index = e.index;
    rec.rid = e.request_id;
    rec.client_daemon = e.client_daemon;
    rec.expiration = e.expiration;
    rec.giop = std::move(e.giop);  // take_all() yields owned entries
    rec.trace = e.trace;
    execute_request(rec, send_replies);
  }
}

void Replicator::promote_warm() {
  if (process_.kernel().tracer().enabled()) {
    auto span = process_.kernel().tracer().start_span("rep.promote", "replication",
                                                      process_.name());
    span.note("style", "warm_passive");
    span.note("replayed", std::to_string(log_.size()));
  }
  log_info(process_.now(), "replicator",
           process_.name() + " promoted to primary (warm), replaying " +
               std::to_string(log_.size()) + " requests");
  replay_log(true);
}

void Replicator::ensure_cold_applied() {
  // A dormant cold backup retains checkpoints without applying them; before
  // it can execute under any other role, the retained chain must land.
  if (engine_ != nullptr && engine_->style() == ReplicationStyle::kColdPassive &&
      !engine_->responder() && stored_checkpoint_.has_value()) {
    install_stored_chain();
  }
}

void Replicator::promote_cold() {
  if (cold_launch_pending_) return;
  cold_launch_pending_ = true;
  log_info(process_.now(), "replicator", process_.name() + " launching cold backup");
  process_.post(params_.cold_launch_delay, [this] {
    if (process_.kernel().tracer().enabled()) {
      auto span = process_.kernel().tracer().start_span("rep.promote", "replication",
                                                        process_.name());
      span.note("style", "cold_passive");
      span.note("replayed", std::to_string(log_.size()));
    }
    install_stored_chain();
    cold_launch_pending_ = false;
    replay_log(true);
    log_info(process_.now(), "replicator", process_.name() + " cold backup live");
  });
}

std::unique_ptr<ReplicationEngine> Replicator::make_engine(ReplicationStyle style) {
  switch (style) {
    case ReplicationStyle::kActive: return std::make_unique<ActiveEngine>(*this);
    case ReplicationStyle::kWarmPassive: return std::make_unique<WarmPassiveEngine>(*this);
    case ReplicationStyle::kColdPassive: return std::make_unique<ColdPassiveEngine>(*this);
    case ReplicationStyle::kSemiActive: return std::make_unique<SemiActiveEngine>(*this);
    case ReplicationStyle::kHybrid: return std::make_unique<HybridEngine>(*this);
  }
  VDEP_ASSERT_MSG(false, "unknown replication style");
  return nullptr;
}

void Replicator::request_style_switch(ReplicationStyle target) {
  // Fig. 5, step I: one or more replicas send a "switch" message to the
  // whole group; duplicates are discarded at delivery.
  if (!process_.alive() || stopped_) return;
  if (engine_ != nullptr && target == engine_->style()) return;
  SwitchMsg msg;
  msg.target = target;
  msg.initiator = process_.id();
  RepEnvelope env{RepEnvelope::Type::kSwitch, msg.encode()};
  endpoint_->multicast(group_, gcs::ServiceType::kAgreed, env.encode());
}

bool Replicator::needs_final_checkpoint(ReplicationStyle from, ReplicationStyle to) {
  // A final checkpoint is needed exactly when some replica holds stale state
  // under `from` but takes an executing role under `to`. Which ranks are
  // stale: warm/cold passive — every backup (rank >= 1); hybrid — the
  // observers (rank >= core); active/semi-active — nobody. Ranks do not
  // change at the switch point, so it suffices that `to`'s stale set does
  // not cover `from`'s.
  const auto first_stale_rank = [](ReplicationStyle s) -> std::size_t {
    switch (s) {
      case ReplicationStyle::kWarmPassive:
      case ReplicationStyle::kColdPassive:
        return 1;
      case ReplicationStyle::kHybrid:
        return 2;  // == default hybrid_active_core; conservative lower bound
      case ReplicationStyle::kActive:
      case ReplicationStyle::kSemiActive:
        return SIZE_MAX;
    }
    return SIZE_MAX;
  };
  return first_stale_rank(from) < first_stale_rank(to);
}

}  // namespace vdep::replication
