// Semi-active replication — the Delta-4 XPA leader/follower model the paper
// cites as middle ground (Sec. 6): every replica executes every request (so
// failover needs no checkpoints or replay) but only the leader transmits
// replies (so reply bandwidth stays flat with the replica count). One of the
// paper's planned style extensions, implemented here for the ablation bench.
#pragma once

#include "replication/engine.hpp"

namespace vdep::replication {

class SemiActiveEngine final : public ReplicationEngine {
 public:
  using ReplicationEngine::ReplicationEngine;

  [[nodiscard]] ReplicationStyle style() const override {
    return ReplicationStyle::kSemiActive;
  }
  [[nodiscard]] bool responder() const override;

  void on_request(const RequestRecord& rec) override;
  void on_checkpoint(const CheckpointMsg& msg) override;
  void on_view_change(const gcs::View& old_view, const gcs::View& new_view) override;
};

}  // namespace vdep::replication
