// The replicator: MEAD's per-process fault-tolerance module (paper Fig. 2).
//
// Three layers in one object:
//   top    — interface to the application/ORB: feeds intercepted GIOP
//            requests into the server ORB and collects replies, charging the
//            calibrated interposition cost per traversal;
//   middle — tunable replication mechanisms: the active / warm-passive /
//            cold-passive / semi-active engines, reply cache, message log,
//            checkpointing with quiescence, recovery/state transfer, and the
//            runtime style-switch protocol of Fig. 5;
//   bottom — interface to group communication: one gcs::Endpoint, AGREED
//            multicast for requests/switches, SAFE for checkpoints, private
//            unicast for replies.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gcs/endpoint.hpp"
#include "orb/orb_core.hpp"
#include "replication/app_state.hpp"
#include "replication/checkpoint.hpp"
#include "replication/engine.hpp"
#include "replication/message_log.hpp"
#include "replication/reply_cache.hpp"
#include "util/stats.hpp"

namespace vdep::replication {

class Replicator {
 public:
  Replicator(net::Network& network, gcs::Daemon& daemon, sim::Process& process,
             orb::ServerOrb& orb, Checkpointable& app, GroupId group,
             ReplicatorParams params = {});
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Joins the group and activates the style. Call once per incarnation. Pass
  // join_existing = true when this replica is added to an already-running
  // group (NumReplicas knob, recovery): it will request a state transfer and
  // log requests until the checkpoint arrives.
  void start(ReplicationStyle style, bool join_existing = false);

  // Graceful retirement: leaves the group (NumReplicas knob shrink). The
  // surviving members see an ordinary membership change.
  void stop();
  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- low-level knobs (FT-CORBA property names in comments) -----------------
  // CheckpointInterval: how often a passive primary checkpoints.
  void set_checkpoint_interval(SimTime interval);
  [[nodiscard]] SimTime checkpoint_interval() const { return params_.checkpoint_interval; }
  // CheckpointAnchorInterval: every K-th group checkpoint is a full anchor;
  // the rest are dirty-set deltas (1 = all full, the pre-delta protocol).
  void set_checkpoint_anchor_interval(std::uint32_t interval);
  [[nodiscard]] std::uint32_t checkpoint_anchor_interval() const {
    return params_.checkpoint_anchor_interval;
  }
  // ReplicationStyle, changed at runtime via the Fig. 5 protocol.
  void request_style_switch(ReplicationStyle target);
  [[nodiscard]] ReplicationStyle style() const;
  [[nodiscard]] bool switch_in_progress() const { return switch_target_.has_value(); }

  // --- introspection / monitoring ---------------------------------------------
  [[nodiscard]] const std::optional<gcs::View>& current_view() const { return view_; }
  // Rank in the current view; SIZE_MAX when not (yet) a member.
  [[nodiscard]] std::size_t my_rank() const;
  [[nodiscard]] bool is_responder() const;
  // False while a joiner is still waiting for its state transfer.
  [[nodiscard]] bool initialized() const { return !uninitialized_; }
  [[nodiscard]] std::uint64_t requests_delivered() const { return request_index_; }
  [[nodiscard]] std::uint64_t requests_executed() const { return executed_count_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoint_counter_; }
  // Incremental-checkpoint telemetry: cuts by kind, encoded bytes multicast,
  // installs by kind, and anchor re-requests after chain gaps. The bench
  // (bench/micro_checkpoint.cpp) and the knob layer's profiling read these.
  [[nodiscard]] std::uint64_t checkpoints_full_taken() const { return checkpoints_full_; }
  [[nodiscard]] std::uint64_t checkpoints_delta_taken() const { return checkpoints_delta_; }
  [[nodiscard]] std::uint64_t checkpoint_bytes_sent() const { return checkpoint_bytes_; }
  [[nodiscard]] std::uint64_t installs_full() const { return installs_full_; }
  [[nodiscard]] std::uint64_t installs_delta() const { return installs_delta_; }
  [[nodiscard]] std::uint64_t anchor_requests_sent() const { return anchor_requests_; }
  // Chain position of this replica's state (last cut or installed checkpoint
  // id); nullopt before any checkpoint activity.
  [[nodiscard]] const std::optional<std::uint64_t>& installed_epoch() const {
    return installed_epoch_;
  }
  // Exposed for retention tests/monitoring (reply GC under delta installs).
  [[nodiscard]] const ReplyCache& reply_cache() const { return reply_cache_; }
  // Requests discarded because their FT_REQUEST expiration had passed.
  [[nodiscard]] std::uint64_t expired_requests_dropped() const {
    return expired_dropped_;
  }
  // Request arrival rate observed at this replica (events/s), the signal the
  // Fig. 6 adaptation policy thresholds on.
  [[nodiscard]] double observed_request_rate();
  [[nodiscard]] Checkpointable& app() { return app_; }
  [[nodiscard]] sim::Process& process() { return process_; }
  [[nodiscard]] gcs::Endpoint& endpoint() { return *endpoint_; }
  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] const ReplicatorParams& params() const { return params_; }

  struct SwitchRecord {
    SimTime initiated;
    SimTime completed;
    ReplicationStyle from;
    ReplicationStyle to;
  };
  [[nodiscard]] const std::vector<SwitchRecord>& switch_history() const {
    return switch_history_;
  }
  void set_on_style_changed(std::function<void(ReplicationStyle)> fn) {
    on_style_changed_ = std::move(fn);
  }
  // Fires whenever this replica snapshots its state (group or local
  // checkpoint) with the fresh checkpoint id — the chaos engine's
  // checkpoint-monotonicity oracle listens here.
  void set_on_checkpoint(std::function<void(std::uint64_t)> fn) {
    on_checkpoint_ = std::move(fn);
  }

  // --- facilities used by the engines -------------------------------------------
  // Executes a request through the ORB (dedup via reply cache); replies to
  // the client iff `send_reply`.
  void execute_request(const RequestRecord& rec, bool send_reply);
  // Appends to the backup log.
  void log_request(const RequestRecord& rec);
  // Quiesce, snapshot, SAFE-multicast; resumes held requests when the
  // checkpoint comes back (i.e. is stable at every member daemon). Cuts a
  // dirty-set delta when the anchor-interval knob and the app allow it;
  // force_full pins an anchor (switch finals, gap recovery).
  void take_checkpoint(bool force_full = false);
  // Quiesce and snapshot locally without multicasting — what a lone passive
  // primary does so a cold restart still has a recovery point.
  void take_local_checkpoint();
  // Warm install: restore app + reply cache (full), or apply the dirty set
  // onto the matching base (delta), truncate log. A delta that does not
  // continue this replica's chain is dropped and a full anchor re-requested.
  void install_checkpoint(const CheckpointMsg& msg);
  // Cold path: retain without applying — a full anchor plus the delta suffix
  // chained onto it.
  void store_checkpoint(const CheckpointMsg& msg);
  [[nodiscard]] const std::optional<CheckpointMsg>& stored_checkpoint() const {
    return stored_checkpoint_;
  }
  // Replays every logged request not yet reflected in this replica's state
  // (promotion / rollback / joiner catch-up); duplicate suppression comes
  // from the per-client applied-retention-id map.
  void replay_log(bool send_replies);
  // Executions since the last checkpoint (drives the every-N-requests
  // checkpoint trigger in the passive engines).
  [[nodiscard]] std::uint64_t executions_since_checkpoint() const {
    return executions_since_checkpoint_;
  }
  // Highest retention id applied per client (the exactly-once frontier).
  [[nodiscard]] const std::map<ProcessId, std::uint64_t>& applied_frontier() const {
    return applied_rid_;
  }
  // Promotion entry points.
  void promote_warm();   // replay with replies, assume primary duties
  // Applies a retained (cold) checkpoint if one is pending; see .cpp.
  void ensure_cold_applied();
  void promote_cold();   // launch delay, apply stored checkpoint, then warm path
  [[nodiscard]] const MessageLog& message_log() const { return log_; }
  // Cold passive: true while a promoted dormant backup is still launching.
  [[nodiscard]] bool cold_launch_pending() const { return cold_launch_pending_; }

 private:
  void on_group_message(const gcs::GroupMessage& msg);
  void on_view(const gcs::View& view);
  void handle_request_envelope(const gcs::GroupMessage& msg, Payload giop);
  void handle_checkpoint(const CheckpointMsg& msg);
  void handle_state_transfer(const StateTransferMsg& msg);
  void handle_switch(const SwitchMsg& msg);
  // Quiescent-context body of take_checkpoint/donate_state: cut full or
  // delta, update the chain, charge CPU, multicast.
  void cut_and_multicast(bool donation);
  [[nodiscard]] bool can_cut_delta() const;
  // Serve a joiner: bundle the retained anchor + delta suffix (+ a fresh
  // delta covering the order point), or fall back to a full checkpoint.
  void donate_state();
  // After a SAFE round completes: serve a deferred donation / anchor request.
  void finish_checkpoint_round();
  // Backup side: a delta did not continue our chain — ask the taker for a
  // full anchor (deduplicated until one arrives).
  void request_anchor();
  // Install the retained cold chain: anchor, then the delta suffix.
  void install_stored_chain();
  void complete_switch();
  void drain_holdq();
  void send_reply_to_client(const RequestRecord& rec, const Payload& reply_giop);
  [[nodiscard]] Bytes augment_reply(const Payload& reply_giop) const;
  void arm_engine_timer();
  [[nodiscard]] std::unique_ptr<ReplicationEngine> make_engine(ReplicationStyle style);
  [[nodiscard]] static bool needs_final_checkpoint(ReplicationStyle from,
                                                   ReplicationStyle to);
  void request_state_transfer();

  net::Network& network_;
  gcs::Daemon& daemon_;
  sim::Process& process_;
  orb::ServerOrb& orb_;
  Checkpointable& app_;
  GroupId group_;
  ReplicatorParams params_;

  std::unique_ptr<gcs::Endpoint> endpoint_;
  std::unique_ptr<ReplicationEngine> engine_;

  std::optional<gcs::View> view_;
  std::uint64_t request_index_ = 0;   // local delivery index of kRequest envelopes
  std::map<ProcessId, std::uint64_t> applied_rid_;  // exactly-once frontier
  std::uint64_t executed_count_ = 0;  // actual executions (dedups excluded)
  std::uint64_t expired_dropped_ = 0;
  ReplyCache reply_cache_;
  MessageLog log_;
  QuiescenceTracker quiescence_;
  SlidingRate rate_{msec(500)};

  // Checkpointing state.
  std::uint64_t checkpoint_counter_ = 0;
  std::uint64_t executions_since_checkpoint_ = 0;
  std::optional<std::uint64_t> outstanding_checkpoint_;  // id we multicast
  bool cut_pending_ = false;  // quiescence waiter registered, cut not yet taken
  std::optional<CheckpointMsg> stored_checkpoint_;       // cold passive: anchor
  std::vector<CheckpointMsg> stored_deltas_;  // cold passive: retained suffix

  // Incremental checkpoint chain — taker side. The encoded anchor and delta
  // suffix are retained (encode-once) so state transfer can ship
  // `anchor + deltas` instead of a monolithic snapshot.
  std::optional<std::uint64_t> last_cut_id_;  // our last group checkpoint
  std::uint64_t last_cut_app_epoch_ = 0;      // app epoch of that cut
  std::uint64_t deltas_since_anchor_ = 0;
  bool anchor_requested_ = false;   // next cut must be a full anchor
  bool pending_donation_ = false;   // state request arrived mid-round
  Payload chain_anchor_;            // encoded full CheckpointMsg
  std::vector<Payload> chain_deltas_;

  // Installer side: chain position of this replica's state.
  std::optional<std::uint64_t> installed_epoch_;
  bool anchor_request_outstanding_ = false;

  // Telemetry (see the introspection accessors).
  std::uint64_t checkpoints_full_ = 0;
  std::uint64_t checkpoints_delta_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  std::uint64_t installs_full_ = 0;
  std::uint64_t installs_delta_ = 0;
  std::uint64_t anchor_requests_ = 0;
  bool holding_ = false;  // requests parked in holdq_ (quiescence / switch)
  std::vector<RequestRecord> holdq_;
  bool uninitialized_ = false;  // joiner awaiting state transfer
  bool join_existing_ = false;
  bool cold_launch_pending_ = false;
  bool stopped_ = false;
  sim::EventHandle engine_timer_;

  // Long-running protocol spans: opened when the round starts, closed when
  // the SAFE round / switch completes (possibly many deliveries later).
  obs::Span checkpoint_span_;
  obs::Span switch_span_;

  // Switch protocol state (Fig. 5).
  std::optional<ReplicationStyle> switch_target_;
  bool switch_awaiting_checkpoint_ = false;
  SimTime switch_started_ = kTimeZero;
  std::vector<SwitchRecord> switch_history_;
  std::function<void(ReplicationStyle)> on_style_changed_;
  std::function<void(std::uint64_t)> on_checkpoint_;
};

}  // namespace vdep::replication
