// The replicator: MEAD's per-process fault-tolerance module (paper Fig. 2).
//
// Three layers in one object:
//   top    — interface to the application/ORB: feeds intercepted GIOP
//            requests into the server ORB and collects replies, charging the
//            calibrated interposition cost per traversal;
//   middle — tunable replication mechanisms: the active / warm-passive /
//            cold-passive / semi-active engines, reply cache, message log,
//            checkpointing with quiescence, recovery/state transfer, and the
//            runtime style-switch protocol of Fig. 5;
//   bottom — interface to group communication: one gcs::Endpoint, AGREED
//            multicast for requests/switches, SAFE for checkpoints, private
//            unicast for replies.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gcs/endpoint.hpp"
#include "orb/orb_core.hpp"
#include "replication/app_state.hpp"
#include "replication/checkpoint.hpp"
#include "replication/engine.hpp"
#include "replication/message_log.hpp"
#include "replication/reply_cache.hpp"
#include "util/stats.hpp"

namespace vdep::replication {

class Replicator {
 public:
  Replicator(net::Network& network, gcs::Daemon& daemon, sim::Process& process,
             orb::ServerOrb& orb, Checkpointable& app, GroupId group,
             ReplicatorParams params = {});
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  // Joins the group and activates the style. Call once per incarnation. Pass
  // join_existing = true when this replica is added to an already-running
  // group (NumReplicas knob, recovery): it will request a state transfer and
  // log requests until the checkpoint arrives.
  void start(ReplicationStyle style, bool join_existing = false);

  // Graceful retirement: leaves the group (NumReplicas knob shrink). The
  // surviving members see an ordinary membership change.
  void stop();
  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- low-level knobs (FT-CORBA property names in comments) -----------------
  // CheckpointInterval: how often a passive primary checkpoints.
  void set_checkpoint_interval(SimTime interval);
  [[nodiscard]] SimTime checkpoint_interval() const { return params_.checkpoint_interval; }
  // ReplicationStyle, changed at runtime via the Fig. 5 protocol.
  void request_style_switch(ReplicationStyle target);
  [[nodiscard]] ReplicationStyle style() const;
  [[nodiscard]] bool switch_in_progress() const { return switch_target_.has_value(); }

  // --- introspection / monitoring ---------------------------------------------
  [[nodiscard]] const std::optional<gcs::View>& current_view() const { return view_; }
  // Rank in the current view; SIZE_MAX when not (yet) a member.
  [[nodiscard]] std::size_t my_rank() const;
  [[nodiscard]] bool is_responder() const;
  // False while a joiner is still waiting for its state transfer.
  [[nodiscard]] bool initialized() const { return !uninitialized_; }
  [[nodiscard]] std::uint64_t requests_delivered() const { return request_index_; }
  [[nodiscard]] std::uint64_t requests_executed() const { return executed_count_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoint_counter_; }
  // Requests discarded because their FT_REQUEST expiration had passed.
  [[nodiscard]] std::uint64_t expired_requests_dropped() const {
    return expired_dropped_;
  }
  // Request arrival rate observed at this replica (events/s), the signal the
  // Fig. 6 adaptation policy thresholds on.
  [[nodiscard]] double observed_request_rate();
  [[nodiscard]] Checkpointable& app() { return app_; }
  [[nodiscard]] sim::Process& process() { return process_; }
  [[nodiscard]] gcs::Endpoint& endpoint() { return *endpoint_; }
  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] const ReplicatorParams& params() const { return params_; }

  struct SwitchRecord {
    SimTime initiated;
    SimTime completed;
    ReplicationStyle from;
    ReplicationStyle to;
  };
  [[nodiscard]] const std::vector<SwitchRecord>& switch_history() const {
    return switch_history_;
  }
  void set_on_style_changed(std::function<void(ReplicationStyle)> fn) {
    on_style_changed_ = std::move(fn);
  }
  // Fires whenever this replica snapshots its state (group or local
  // checkpoint) with the fresh checkpoint id — the chaos engine's
  // checkpoint-monotonicity oracle listens here.
  void set_on_checkpoint(std::function<void(std::uint64_t)> fn) {
    on_checkpoint_ = std::move(fn);
  }

  // --- facilities used by the engines -------------------------------------------
  // Executes a request through the ORB (dedup via reply cache); replies to
  // the client iff `send_reply`.
  void execute_request(const RequestRecord& rec, bool send_reply);
  // Appends to the backup log.
  void log_request(const RequestRecord& rec);
  // Quiesce, snapshot, SAFE-multicast; resumes held requests when the
  // checkpoint comes back (i.e. is stable at every member daemon).
  void take_checkpoint();
  // Quiesce and snapshot locally without multicasting — what a lone passive
  // primary does so a cold restart still has a recovery point.
  void take_local_checkpoint();
  // Warm install: restore app + reply cache, truncate log.
  void install_checkpoint(const CheckpointMsg& msg);
  // Cold path: retain without applying.
  void store_checkpoint(const CheckpointMsg& msg);
  [[nodiscard]] const std::optional<CheckpointMsg>& stored_checkpoint() const {
    return stored_checkpoint_;
  }
  // Replays every logged request not yet reflected in this replica's state
  // (promotion / rollback / joiner catch-up); duplicate suppression comes
  // from the per-client applied-retention-id map.
  void replay_log(bool send_replies);
  // Executions since the last checkpoint (drives the every-N-requests
  // checkpoint trigger in the passive engines).
  [[nodiscard]] std::uint64_t executions_since_checkpoint() const {
    return executions_since_checkpoint_;
  }
  // Highest retention id applied per client (the exactly-once frontier).
  [[nodiscard]] const std::map<ProcessId, std::uint64_t>& applied_frontier() const {
    return applied_rid_;
  }
  // Promotion entry points.
  void promote_warm();   // replay with replies, assume primary duties
  // Applies a retained (cold) checkpoint if one is pending; see .cpp.
  void ensure_cold_applied();
  void promote_cold();   // launch delay, apply stored checkpoint, then warm path
  [[nodiscard]] const MessageLog& message_log() const { return log_; }
  // Cold passive: true while a promoted dormant backup is still launching.
  [[nodiscard]] bool cold_launch_pending() const { return cold_launch_pending_; }

 private:
  void on_group_message(const gcs::GroupMessage& msg);
  void on_view(const gcs::View& view);
  void handle_request_envelope(const gcs::GroupMessage& msg, Payload giop);
  void handle_checkpoint(const CheckpointMsg& msg);
  void handle_switch(const SwitchMsg& msg);
  void complete_switch();
  void drain_holdq();
  void send_reply_to_client(const RequestRecord& rec, const Payload& reply_giop);
  [[nodiscard]] Bytes augment_reply(const Payload& reply_giop) const;
  void arm_engine_timer();
  [[nodiscard]] std::unique_ptr<ReplicationEngine> make_engine(ReplicationStyle style);
  [[nodiscard]] static bool needs_final_checkpoint(ReplicationStyle from,
                                                   ReplicationStyle to);
  void request_state_transfer();

  net::Network& network_;
  gcs::Daemon& daemon_;
  sim::Process& process_;
  orb::ServerOrb& orb_;
  Checkpointable& app_;
  GroupId group_;
  ReplicatorParams params_;

  std::unique_ptr<gcs::Endpoint> endpoint_;
  std::unique_ptr<ReplicationEngine> engine_;

  std::optional<gcs::View> view_;
  std::uint64_t request_index_ = 0;   // local delivery index of kRequest envelopes
  std::map<ProcessId, std::uint64_t> applied_rid_;  // exactly-once frontier
  std::uint64_t executed_count_ = 0;  // actual executions (dedups excluded)
  std::uint64_t expired_dropped_ = 0;
  ReplyCache reply_cache_;
  MessageLog log_;
  QuiescenceTracker quiescence_;
  SlidingRate rate_{msec(500)};

  // Checkpointing state.
  std::uint64_t checkpoint_counter_ = 0;
  std::uint64_t executions_since_checkpoint_ = 0;
  std::optional<std::uint64_t> outstanding_checkpoint_;  // id we multicast
  std::optional<CheckpointMsg> stored_checkpoint_;       // cold passive
  bool holding_ = false;  // requests parked in holdq_ (quiescence / switch)
  std::vector<RequestRecord> holdq_;
  bool uninitialized_ = false;  // joiner awaiting state transfer
  bool join_existing_ = false;
  bool cold_launch_pending_ = false;
  bool stopped_ = false;
  sim::EventHandle engine_timer_;

  // Long-running protocol spans: opened when the round starts, closed when
  // the SAFE round / switch completes (possibly many deliveries later).
  obs::Span checkpoint_span_;
  obs::Span switch_span_;

  // Switch protocol state (Fig. 5).
  std::optional<ReplicationStyle> switch_target_;
  bool switch_awaiting_checkpoint_ = false;
  SimTime switch_started_ = kTimeZero;
  std::vector<SwitchRecord> switch_history_;
  std::function<void(ReplicationStyle)> on_style_changed_;
  std::function<void(std::uint64_t)> on_checkpoint_;
};

}  // namespace vdep::replication
