// The request log kept by passive backups (and by joining replicas while
// they await a state transfer).
//
// Entries are kept in the replica's local delivery order. A checkpoint's
// per-client applied map truncates the covered prefix (every entry whose
// retention id the snapshot already reflects); what remains is exactly what
// a promoted backup must replay.
#pragma once

#include <cstdint>
#include <map>

#include "obs/trace_context.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/payload.hpp"
#include "util/time.hpp"

namespace vdep::replication {

struct LoggedRequest {
  std::uint64_t index = 0;   // local delivery index (1-based, per replica)
  RequestId request_id;      // FT_REQUEST identity
  NodeId client_daemon;      // where to send the reply on replay
  SimTime expiration = kTimeZero;  // FT_REQUEST expiration (0 = none)
  Payload giop;              // the raw request (shared with the RequestRecord)
  obs::TraceContext trace;   // caller's context, so replayed spans re-link
};

class MessageLog {
 public:
  void append(LoggedRequest entry);

  // Drops every entry already covered by the applied map (retention id at or
  // below the client's entry).
  void truncate_applied(const std::map<ProcessId, std::uint64_t>& applied);

  // All retained entries in delivery order; the log is cleared. Used by
  // promotion/rollback replay.
  [[nodiscard]] std::vector<LoggedRequest> take_all();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::uint64_t highest_index() const;
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  void clear();

 private:
  std::map<std::uint64_t, LoggedRequest> entries_;
  std::size_t bytes_ = 0;
};

}  // namespace vdep::replication
