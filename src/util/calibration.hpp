// Calibration constants derived from the paper's measurements.
//
// The paper evaluated on seven 900 MHz Pentium-III machines (RedHat 9,
// 100 Mb/s LAN) running TAO 1.4 over Spread 3.17.01. We reproduce the
// *per-layer costs* the paper reports and let queueing, fan-out and
// checkpoint quiescence produce the macroscopic curves.
//
// Figure 3 (break-down of the average round-trip time, 1 client / 1 replica):
//   Application      15 us
//   ORB             398 us
//   Group comm.     620 us
//   Replicator      154 us
//   ------------   1187 us total
//
// A round trip traverses the ORB four times (client out, server in, server
// out, client in), the replicator four times, and the group-communication
// layer twice (one multicast each way), so the per-traversal costs below
// reconstruct the Figure 3 totals exactly.
#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace vdep::calib {

// --- ORB (TAO 1.4 on a 900 MHz P-III) -------------------------------------
// 398 us per round trip / 4 traversals.
inline constexpr SimTime kOrbTraversal = usec_f(99.5);

// --- Replicator (MEAD interposer + replication mechanisms) ----------------
// 154 us per round trip / 4 traversals.
inline constexpr SimTime kReplicatorTraversal = usec_f(38.5);

// Interception *without* redirection (Fig. 4 middle bars: system calls are
// intercepted but messages still flow over plain TCP). A fraction of the
// full traversal cost: the library-interposition trampoline only.
inline constexpr SimTime kInterceptOnlyTraversal = usec_f(19.0);

// --- Group communication (Spread 3.17.01) ---------------------------------
// 620 us per round trip / 2 one-way multicasts. Split between daemon CPU
// processing (per packet, at both sender and receiver daemons) and the wire.
// The per-packet daemon cost is what makes large state checkpoints expensive
// (a 64 KB checkpoint fragments into ~47 packets), matching the paper's slow
// warm-passive configurations.
inline constexpr SimTime kGcsDaemonPacketCost = usec_f(105.0);  // per packet, per daemon
inline constexpr SimTime kGcsSequencerCost = usec_f(25.0);      // ordering decision
// Spread establishes message *stability* (needed before SAFE delivery) by
// accumulating acknowledgements over token rotations; the sequencer daemon
// therefore publishes stability watermarks periodically rather than per
// message. This is why SAFE multicasts (checkpoints) are expensive while
// AGREED ones (requests) are not.
inline constexpr SimTime kStabilityTokenInterval = msec(15);

// --- Application (micro-benchmark) -----------------------------------------
inline constexpr SimTime kAppProcessing = usec(15);

// --- Network (switched 100 Mb/s LAN) ---------------------------------------
inline constexpr double kLinkBandwidthBytesPerSec = 100e6 / 8.0;  // 12.5 MB/s
inline constexpr SimTime kLinkPropagation = usec(85);             // one-way base
inline constexpr SimTime kLinkJitterStddev = usec(12);
inline constexpr std::size_t kMtuBytes = 1400;  // fragmentation threshold

// --- Wire overheads (bandwidth accounting) ---------------------------------
inline constexpr std::size_t kGcsHeaderBytes = 56;   // Spread-style per packet
inline constexpr std::size_t kGiopHeaderBytes = 60;  // GIOP + service contexts
inline constexpr std::size_t kTcpIpHeaderBytes = 58; // Ethernet+IP+TCP framing

// --- Micro-benchmark application (Sec. 4: "a cycle of 10,000 requests") ----
inline constexpr std::size_t kDefaultRequestBytes = 112;
inline constexpr std::size_t kDefaultReplyBytes = 96;
inline constexpr std::size_t kDefaultStateBytes = 7552;
inline constexpr int kDefaultCycleRequests = 10'000;

// --- Warm-passive defaults (the checkpointing-frequency low-level knob) ----
inline constexpr SimTime kDefaultCheckpointInterval = msec(50);

// --- Fault monitoring (FT-CORBA fault monitoring interval property) --------
// Detection time = interval * misses (500 ms by default). The timeout must
// comfortably exceed transient loss bursts: heartbeats are fire-and-forget,
// and a false suspicion expels a healthy daemon (suspicion is sticky under
// the crash-stop model, as in Spread). Process-level crashes are detected
// locally and near-instantly; this timeout only governs whole-node failures.
inline constexpr SimTime kDefaultHeartbeatInterval = msec(20);
inline constexpr int kDefaultHeartbeatMisses = 25;

}  // namespace vdep::calib
