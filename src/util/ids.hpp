// Strongly-typed identifiers used across the stack.
//
// Each id is a distinct type so that a NodeId cannot be passed where a
// ProcessId is expected; all are ordered and hashable so they can key maps.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vdep {

namespace detail {

// CRTP-free strong integer id. Tag makes each instantiation a distinct type.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  [[nodiscard]] std::string str() const {
    return valid() ? std::to_string(value_) : std::string("<none>");
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

}  // namespace detail

// A physical host in the simulated testbed.
using NodeId = detail::StrongId<struct NodeTag>;
// An application or infrastructure process (a replica is a process).
using ProcessId = detail::StrongId<struct ProcessTag>;
// A group-communication group.
using GroupId = detail::StrongId<struct GroupTag>;
// A CORBA-style object key within a server process.
using ObjectId = detail::StrongId<struct ObjectTag>;
// A connection (TCP-like channel) endpoint pair instance.
using ChannelId = detail::StrongId<struct ChannelTag>;

// Identifies a client request uniquely across retransmissions: the issuing
// client process plus a client-local sequence number. Used for duplicate
// suppression in the replicator and for the reply cache.
struct RequestId {
  ProcessId client;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const RequestId&, const RequestId&) = default;

  [[nodiscard]] std::string str() const {
    return client.str() + "#" + std::to_string(seq);
  }
};

}  // namespace vdep

template <typename Tag>
struct std::hash<vdep::detail::StrongId<Tag>> {
  std::size_t operator()(vdep::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};

template <>
struct std::hash<vdep::RequestId> {
  std::size_t operator()(const vdep::RequestId& r) const noexcept {
    std::size_t h = std::hash<vdep::ProcessId>{}(r.client);
    return h ^ (std::hash<std::uint64_t>{}(r.seq) + 0x9e3779b97f4a7c15ULL + (h << 6) +
                (h >> 2));
  }
};
