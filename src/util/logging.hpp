// Minimal leveled logging for the infrastructure.
//
// Logging is off by default (benchmarks and tests run silently); enable via
// Logger::set_level or the VDEP_LOG environment variable (trace|debug|info|
// warn|error|off). Log lines carry the simulated timestamp when provided,
// which is what you want when debugging a protocol trace.
#pragma once

#include <cstdio>
#include <string>

#include "util/time.hpp"

namespace vdep {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  // Initialize from VDEP_LOG if set; called lazily on first use.
  static void init_from_env();

  // Clears the cached level and env-checked flag so init_from_env re-reads
  // VDEP_LOG. For tests only — callers must not race it against concurrent
  // logging (the stores are atomic, but a logger mid-line keeps the level it
  // already read).
  static void reset_for_testing();

  static void log(LogLevel level, SimTime sim_now, const std::string& component,
                  const std::string& message);
};

// Convenience wrappers. `now` is the simulated time (pass kTimeZero outside
// simulation contexts).
inline void log_trace(SimTime now, const std::string& c, const std::string& m) {
  Logger::log(LogLevel::kTrace, now, c, m);
}
inline void log_debug(SimTime now, const std::string& c, const std::string& m) {
  Logger::log(LogLevel::kDebug, now, c, m);
}
inline void log_info(SimTime now, const std::string& c, const std::string& m) {
  Logger::log(LogLevel::kInfo, now, c, m);
}
inline void log_warn(SimTime now, const std::string& c, const std::string& m) {
  Logger::log(LogLevel::kWarn, now, c, m);
}
inline void log_error(SimTime now, const std::string& c, const std::string& m) {
  Logger::log(LogLevel::kError, now, c, m);
}

}  // namespace vdep
