// Tiny key=value configuration parser shared by benches and examples, so
// every binary accepts overrides like:
//
//   bench/fig7_tradeoffs clients=5 replicas=3 seed=42
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vdep {

class Config {
 public:
  Config() = default;

  // Parses argv entries of the form key=value; entries without '=' are
  // collected as positional arguments. Throws std::invalid_argument on a
  // duplicate key.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace vdep
