// Simulated-time types.
//
// The simulation clock is a 64-bit count of nanoseconds since experiment
// start. The paper reports all latencies in microseconds; `to_usec` converts
// for reporting.
#pragma once

#include <chrono>
#include <cstdint>

namespace vdep {

// Durations and absolute simulated times share one representation; an
// absolute time is a duration since the start of the run (time zero).
using SimTime = std::chrono::nanoseconds;

constexpr SimTime kTimeZero{0};

[[nodiscard]] constexpr SimTime nsec(std::int64_t n) { return SimTime{n}; }
[[nodiscard]] constexpr SimTime usec(std::int64_t n) { return SimTime{n * 1000}; }
[[nodiscard]] constexpr SimTime msec(std::int64_t n) { return SimTime{n * 1'000'000}; }
[[nodiscard]] constexpr SimTime sec(std::int64_t n) { return SimTime{n * 1'000'000'000}; }

// Fractional constructors for calibration constants such as 38.5 us.
[[nodiscard]] constexpr SimTime usec_f(double n) {
  return SimTime{static_cast<std::int64_t>(n * 1000.0)};
}
[[nodiscard]] constexpr SimTime msec_f(double n) {
  return SimTime{static_cast<std::int64_t>(n * 1'000'000.0)};
}
[[nodiscard]] constexpr SimTime sec_f(double n) {
  return SimTime{static_cast<std::int64_t>(n * 1'000'000'000.0)};
}

[[nodiscard]] constexpr double to_usec(SimTime t) {
  return static_cast<double>(t.count()) / 1000.0;
}
[[nodiscard]] constexpr double to_msec(SimTime t) {
  return static_cast<double>(t.count()) / 1'000'000.0;
}
[[nodiscard]] constexpr double to_sec(SimTime t) {
  return static_cast<double>(t.count()) / 1'000'000'000.0;
}

}  // namespace vdep
