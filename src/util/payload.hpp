// Immutable, ref-counted byte buffer slices for the message hot path.
//
// A Payload is a frozen view onto a shared byte buffer: copying one is a
// pointer copy plus a refcount bump, never a byte copy. This is what lets the
// leader daemon encode a fan-out frame once and hand the same buffer to every
// destination, and what lets decode alias sub-ranges of a received frame
// (via the owner-aware ByteReader) instead of splicing them out.
//
// Invariants:
//  - The underlying buffer is never mutated after the Payload is built.
//  - An aliasing Payload keeps its owning buffer alive via `owner_`; a view
//    taken *without* an owner (plain span) must not outlive the frame it was
//    cut from — use copy_of() when in doubt.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "util/bytes.hpp"

namespace vdep {

class Payload {
 public:
  Payload() = default;

  // Freezes a buffer. Implicit on rvalues only: adopting a Bytes is one move,
  // while adopting an lvalue would silently deep-copy — spell that copy_of().
  Payload(Bytes&& buf)  // NOLINT(google-explicit-constructor)
      : Payload(std::make_shared<const Bytes>(std::move(buf))) {}

  explicit Payload(std::shared_ptr<const Bytes> buf)
      : owner_(buf), data_(buf ? buf->data() : nullptr), size_(buf ? buf->size() : 0) {}

  // Aliasing view: `view` must point into storage kept alive by `owner`.
  Payload(std::shared_ptr<const void> owner, std::span<const std::uint8_t> view)
      : owner_(std::move(owner)), data_(view.data()), size_(view.size()) {}

  [[nodiscard]] static Payload copy_of(std::span<const std::uint8_t> view) {
    return Payload(Bytes(view.begin(), view.end()));
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<const std::uint8_t> view() const { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return view(); }  // NOLINT

  // Deep copy back into a plain vector (boundary to non-Payload APIs).
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  // Number of Payloads (and readers) sharing the underlying buffer.
  // Diagnostic only — used by tests to assert fan-out really shares.
  [[nodiscard]] long use_count() const { return owner_.use_count(); }

  // Keepalive for the underlying buffer; pass to ByteReader so decoded
  // sub-views can alias this frame.
  [[nodiscard]] const std::shared_ptr<const void>& owner() const { return owner_; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// Reads a length-prefixed blob as a Payload. Aliases the reader's frame when
// the reader carries an owner (zero-copy); deep-copies otherwise so the
// result is always safe to retain.
[[nodiscard]] Payload read_payload(ByteReader& r);

}  // namespace vdep
