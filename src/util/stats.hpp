// Statistics collectors used by the monitoring layer and the experiment
// harness: running moments, percentile samplers, and sliding-window rates.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.hpp"

namespace vdep {

// Online mean / variance / min / max (Welford). Used for latency and jitter;
// the paper reports jitter as the variability of the round-trip time, which
// we report as the standard deviation.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);
  void reset();

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample (experiments are bounded, typically 10k requests as in
// the paper) and answers arbitrary percentile queries.
class Sampler {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] double percentile(double p) const;  // p in [0,100]
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  // Raw samples (order unspecified); used when merging samplers.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  void merge(const Sampler& other) {
    for (double x : other.samples_) add(x);
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats stats_;
};

// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the edge
// buckets. Used for latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Fixed-bucket log-scale histogram for non-negative samples (latencies in
// us, sizes in bytes). Bucket boundaries are geometric — kSubBuckets per
// octave — so relative error is bounded (~9%) across twelve decades at a
// fixed, small memory cost, unlike Sampler which stores every sample.
// Percentiles interpolate nothing: they return the lower bound of the bucket
// holding the rank (clamped to the exact observed min/max), which keeps
// results deterministic and platform-independent.
class LogHistogram {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return total_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return total_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  // p in [0, 100]. Returns 0 with no samples.
  [[nodiscard]] double percentile(double p) const;

  void merge(const LogHistogram& other);
  void reset();

  // Bucket-wise difference `*this - earlier`, where `earlier` is a previous
  // copy of this same histogram (every bucket count monotone since then).
  // The delta's min/max are only known to bucket resolution: they are taken
  // from the edge buckets of the delta, tightened by this histogram's
  // lifetime range. Percentiles over a delta therefore stay deterministic
  // but may report bucket bounds at the extremes.
  [[nodiscard]] LogHistogram delta_since(const LogHistogram& earlier) const;

  // 16 buckets per octave; exponents cover ~[2^-32, 2^32).
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr int kMinExponent = -32;
  static constexpr int kMaxExponent = 32;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 2;

  [[nodiscard]] static std::size_t bucket_index(double x);
  [[nodiscard]] static double bucket_lower_bound(std::size_t index);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return counts_[index];
  }

 private:
  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Events-per-second estimator over a sliding time window. This is the
// "request arrival rate observed at the server" signal that drives the
// adaptive-replication policy of Fig. 6.
class SlidingRate {
 public:
  explicit SlidingRate(SimTime window);

  void record(SimTime now);           // one event at `now`
  [[nodiscard]] double rate(SimTime now);  // events/sec over the window ending at `now`
  [[nodiscard]] SimTime window() const { return window_; }

 private:
  void evict(SimTime now);

  SimTime window_;
  std::deque<SimTime> events_;
};

// Exponentially-weighted moving average with a configurable smoothing factor;
// used for smoothed latency signals in contracts.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool has_value() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace vdep
