// Statistics collectors used by the monitoring layer and the experiment
// harness: running moments, percentile samplers, and sliding-window rates.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.hpp"

namespace vdep {

// Online mean / variance / min / max (Welford). Used for latency and jitter;
// the paper reports jitter as the variability of the round-trip time, which
// we report as the standard deviation.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);
  void reset();

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample (experiments are bounded, typically 10k requests as in
// the paper) and answers arbitrary percentile queries.
class Sampler {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] double percentile(double p) const;  // p in [0,100]
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] const RunningStats& stats() const { return stats_; }
  // Raw samples (order unspecified); used when merging samplers.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  void merge(const Sampler& other) {
    for (double x : other.samples_) add(x);
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStats stats_;
};

// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the edge
// buckets. Used for latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Events-per-second estimator over a sliding time window. This is the
// "request arrival rate observed at the server" signal that drives the
// adaptive-replication policy of Fig. 6.
class SlidingRate {
 public:
  explicit SlidingRate(SimTime window);

  void record(SimTime now);           // one event at `now`
  [[nodiscard]] double rate(SimTime now);  // events/sec over the window ending at `now`
  [[nodiscard]] SimTime window() const { return window_; }

 private:
  void evict(SimTime now);

  SimTime window_;
  std::deque<SimTime> events_;
};

// Exponentially-weighted moving average with a configurable smoothing factor;
// used for smoothed latency signals in contracts.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool has_value() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace vdep
