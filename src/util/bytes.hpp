// Flat byte buffers and a little-endian serialization reader/writer.
//
// This is the wire format used *inside* the simulated infrastructure (group
// communication headers, checkpoints, replicated-state updates). Application
// payloads carried over the ORB use the CDR encoding in src/orb/cdr.hpp,
// which follows CORBA alignment rules instead.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vdep {

using Bytes = std::vector<std::uint8_t>;

// Thrown when a Reader runs past the end of its buffer or decodes an
// out-of-range value; indicates a malformed message.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

// Appends fixed-width little-endian integers, length-prefixed blobs and
// strings to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw_int(v); }
  void u32(std::uint32_t v) { raw_int(v); }
  void u64(std::uint64_t v) { raw_int(v); }
  void i64(std::int64_t v) { raw_int(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    raw_int(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(std::span<const std::uint8_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void raw_int(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Reads values written by ByteWriter. Throws DecodeError on underrun; error
// messages carry the reader position so malformed frames are diagnosable.
//
// A reader may carry an `owner` keepalive for the frame it reads from; when
// present, bytes_view()/str_view() results (and Payloads cut from them via
// read_payload) may safely alias the frame, since whoever holds the owner
// keeps the storage alive.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  ByteReader(std::shared_ptr<const void> owner, std::span<const std::uint8_t> data)
      : data_(data), owner_(std::move(owner)) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return raw_int<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return raw_int<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return raw_int<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw error("boolean out of range", pos_ - 1);
    return v == 1;
  }

  [[nodiscard]] Bytes bytes() {
    auto s = bytes_view();
    return Bytes(s.begin(), s.end());
  }
  [[nodiscard]] std::string str() {
    auto s = str_view();
    return std::string(s);
  }

  // Non-copying accessors: the returned view aliases the reader's buffer and
  // is only valid while that buffer (or the reader's owner) lives.
  [[nodiscard]] std::span<const std::uint8_t> bytes_view() {
    const std::uint32_t n = u32();
    return take(n);
  }
  [[nodiscard]] std::string_view str_view() {
    auto s = bytes_view();
    return std::string_view(reinterpret_cast<const char*>(s.data()), s.size());
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  [[nodiscard]] const std::shared_ptr<const void>& owner() const { return owner_; }

  // Builds a DecodeError annotated with the current (or given) position, for
  // range checks performed by message decoders on top of this reader.
  [[nodiscard]] DecodeError error(const std::string& what) const {
    return error(what, pos_);
  }
  [[nodiscard]] DecodeError error(const std::string& what, std::size_t at) const {
    return DecodeError(what + " at byte " + std::to_string(at) + " of " +
                       std::to_string(data_.size()));
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw error("buffer underrun");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  [[nodiscard]] T raw_int() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(s[i]) << (8 * i)));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::shared_ptr<const void> owner_;
  std::size_t pos_ = 0;
};

// Produces a payload of `size` deterministic filler bytes (used by workload
// generators for request/reply bodies of a given size).
[[nodiscard]] Bytes filler_bytes(std::size_t size, std::uint8_t seed = 0x5a);

// FNV-1a over a byte span; used for state digests in consistency checks.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace vdep
