#include "util/bytes.hpp"

namespace vdep {

Bytes filler_bytes(std::size_t size, std::uint8_t seed) {
  Bytes out(size);
  std::uint8_t v = seed;
  for (std::size_t i = 0; i < size; ++i) {
    v = static_cast<std::uint8_t>(v * 167 + 13);
    out[i] = v;
  }
  return out;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace vdep
