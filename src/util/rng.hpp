// Deterministic pseudo-random number generation.
//
// Every source of randomness in the simulator (network jitter, workload
// inter-arrival times, fault injection) draws from an Rng seeded from the
// experiment seed, so runs are bit-reproducible. xoshiro256** is used for its
// speed and statistical quality; std::mt19937_64 would also work but is
// slower and its distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

namespace vdep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next();

  // Uniform in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  // Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  // Exponential with the given mean (> 0); used for Poisson arrivals.
  [[nodiscard]] double exponential(double mean);

  // Normal via Box-Muller.
  [[nodiscard]] double normal(double mean, double stddev);

  // Derives an independent stream; children of distinct indices do not
  // correlate with each other or the parent.
  [[nodiscard]] Rng fork(std::uint64_t stream_index);

 private:
  std::uint64_t s_[4];
};

}  // namespace vdep
