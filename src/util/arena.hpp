// Allocation-recycling helpers for the hot paths: a string interner for the
// tracer's repeated span labels and a buffer pool for wire frames.
//
// Both follow the slot-pool idiom used across the codebase (see
// sim::detail::EventSlotPool): ownership stays in one arena, hot paths hand
// out references or recycled slots, and the steady state performs no
// allocation. Neither is thread-safe, and neither needs to be: every
// instance is owned by a single kernel's object graph (the tracer's
// interner, a link's frame pool), and a kernel is confined to one thread —
// the parallel campaign fleet gives each trial its own kernel rather than
// sharing these across threads.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace vdep {

// Deduplicating store of immutable strings with stable addresses. Span
// names, categories and process labels repeat endlessly ("gcs.deliver",
// "replica0@srv0", ...); interning them turns three string allocations per
// span record into three pointer-sized views after warmup.
class StringInterner {
 public:
  std::string_view intern(std::string_view s) {
    auto it = strings_.find(s);
    if (it == strings_.end()) it = strings_.emplace(s).first;
    return *it;
  }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  // Node-based container: element addresses are stable for the interner's
  // lifetime, so returned views never dangle. Transparent comparator lets
  // lookups run on the string_view without constructing a std::string.
  std::set<std::string, std::less<>> strings_;
};

// Recycles ref-counted byte buffers for short-lived wire frames. A slot is
// reusable once every Payload aliasing it has been dropped (use_count back
// to 1), which restores the "frozen after build" Payload invariant before
// the buffer is written again.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  // A buffer resized to `size`: recycled when an unreferenced slot exists,
  // freshly allocated (and pooled for next time, up to the cap) otherwise.
  [[nodiscard]] std::shared_ptr<Bytes> acquire(std::size_t size) {
    for (std::size_t probes = 0; probes < pool_.size(); ++probes) {
      cursor_ = cursor_ + 1 < pool_.size() ? cursor_ + 1 : 0;
      auto& slot = pool_[cursor_];
      if (slot.use_count() == 1) {
        slot->resize(size);
        return slot;
      }
    }
    auto buf = std::make_shared<Bytes>(size);
    if (pool_.size() < max_pooled_) pool_.push_back(buf);
    return buf;
  }

  [[nodiscard]] std::size_t pooled() const { return pool_.size(); }

 private:
  std::size_t max_pooled_;
  std::vector<std::shared_ptr<Bytes>> pool_;
  std::size_t cursor_ = 0;
};

}  // namespace vdep
