#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace vdep {

namespace {

// The logger is process-global state shared by every trial in a parallel
// campaign, so the level must be readable without a data race from any
// worker thread. The hot path (log() below a disabled level) is two relaxed
// atomic loads; the env parse is serialized by a mutex and runs once.
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::atomic<bool> g_env_checked{false};
std::mutex g_init_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
  g_env_checked.store(true, std::memory_order_release);
}

LogLevel Logger::level() {
  init_from_env();
  return g_level.load(std::memory_order_relaxed);
}

void Logger::init_from_env() {
  if (g_env_checked.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(g_init_mutex);
  if (g_env_checked.load(std::memory_order_relaxed)) return;
  LogLevel level = LogLevel::kOff;
  if (const char* env = std::getenv("VDEP_LOG")) {
    if (std::strcmp(env, "trace") == 0) level = LogLevel::kTrace;
    else if (std::strcmp(env, "debug") == 0) level = LogLevel::kDebug;
    else if (std::strcmp(env, "info") == 0) level = LogLevel::kInfo;
    else if (std::strcmp(env, "warn") == 0) level = LogLevel::kWarn;
    else if (std::strcmp(env, "error") == 0) level = LogLevel::kError;
  }
  g_level.store(level, std::memory_order_relaxed);
  g_env_checked.store(true, std::memory_order_release);
}

void Logger::reset_for_testing() {
  g_level.store(LogLevel::kOff, std::memory_order_relaxed);
  g_env_checked.store(false, std::memory_order_release);
}

void Logger::log(LogLevel level, SimTime sim_now, const std::string& component,
                 const std::string& message) {
  init_from_env();
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  if (level < current || current == LogLevel::kOff) return;
  // fprintf locks the FILE, so concurrent lines never interleave mid-line.
  std::fprintf(stderr, "[%12.3f us] %s %-12s %s\n", to_usec(sim_now), level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace vdep
