#include "util/logging.hpp"

#include <cstdlib>
#include <cstring>

namespace vdep {

namespace {

LogLevel g_level = LogLevel::kOff;
bool g_env_checked = false;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::set_level(LogLevel level) {
  g_level = level;
  g_env_checked = true;
}

LogLevel Logger::level() {
  init_from_env();
  return g_level;
}

void Logger::init_from_env() {
  if (g_env_checked) return;
  g_env_checked = true;
  const char* env = std::getenv("VDEP_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "trace") == 0) g_level = LogLevel::kTrace;
  else if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else g_level = LogLevel::kOff;
}

void Logger::reset_for_testing() {
  g_level = LogLevel::kOff;
  g_env_checked = false;
}

void Logger::log(LogLevel level, SimTime sim_now, const std::string& component,
                 const std::string& message) {
  init_from_env();
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%12.3f us] %s %-12s %s\n", to_usec(sim_now), level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace vdep
