#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace vdep {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void Sampler::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stats_.add(x);
}

double Sampler::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  VDEP_ASSERT(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank with linear interpolation.
  const double idx = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  VDEP_ASSERT(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  VDEP_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

SlidingRate::SlidingRate(SimTime window) : window_(window) {
  VDEP_ASSERT(window > kTimeZero);
}

void SlidingRate::record(SimTime now) {
  VDEP_ASSERT_MSG(events_.empty() || now >= events_.back(),
                  "events must be recorded in time order");
  events_.push_back(now);
  evict(now);
}

double SlidingRate::rate(SimTime now) {
  evict(now);
  if (events_.empty()) return 0.0;
  return static_cast<double>(events_.size()) / to_sec(window_);
}

void SlidingRate::evict(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front() <= cutoff) events_.pop_front();
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace vdep
