#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace vdep {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void Sampler::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stats_.add(x);
}

double Sampler::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  VDEP_ASSERT(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank with linear interpolation.
  const double idx = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  VDEP_ASSERT(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  VDEP_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i) + width_; }

std::size_t LogHistogram::bucket_index(double x) {
  if (!(x > 0.0)) return 0;  // zero, negatives and NaN land in the floor bucket
  int exp = 0;
  // frexp: x = mantissa * 2^exp with mantissa in [0.5, 1). IEEE-exact, so the
  // bucketing is identical on every platform (no transcendental functions).
  const double mantissa = std::frexp(x, &exp);
  if (exp <= kMinExponent) return 0;
  if (exp > kMaxExponent) return kBuckets - 1;
  // Sub-bucket within the octave [2^(exp-1), 2^exp): mantissa*2 is in [1,2).
  const auto sub = static_cast<std::size_t>((mantissa * 2.0 - 1.0) *
                                            static_cast<double>(kSubBuckets));
  return 1 +
         static_cast<std::size_t>(exp - 1 - kMinExponent) * kSubBuckets +
         std::min(sub, kSubBuckets - 1);
}

double LogHistogram::bucket_lower_bound(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBuckets - 1) return std::ldexp(1.0, kMaxExponent);
  const std::size_t i = index - 1;
  const int exp = kMinExponent + static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<double>(i % kSubBuckets);
  return std::ldexp(1.0 + sub / static_cast<double>(kSubBuckets), exp);
}

void LogHistogram::add(double x) {
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++total_;
  sum_ += x;
  ++counts_[bucket_index(x)];
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  VDEP_ASSERT(p >= 0.0 && p <= 100.0);
  // Nearest-rank with p=100 pinned to the true maximum (the rank-N sample is
  // the max, but a bucket lower bound would under-report it).
  if (p >= 100.0) return max_;
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil((p / 100.0) * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The bucket's lower bound, clamped to the observed range so that
      // percentile(0) == min() and percentile(100) <= max().
      return std::clamp(bucket_lower_bound(i), min_, max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
}

void LogHistogram::reset() { *this = LogHistogram{}; }

LogHistogram LogHistogram::delta_since(const LogHistogram& earlier) const {
  VDEP_ASSERT_MSG(total_ >= earlier.total_,
                  "delta_since expects an earlier copy of the same histogram");
  LogHistogram out;
  std::size_t first = kBuckets;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    VDEP_ASSERT(counts_[i] >= earlier.counts_[i]);
    const std::uint64_t d = counts_[i] - earlier.counts_[i];
    out.counts_[i] = d;
    if (d > 0) {
      if (first == kBuckets) first = i;
      last = i;
    }
  }
  out.total_ = total_ - earlier.total_;
  out.sum_ = sum_ - earlier.sum_;
  if (out.total_ > 0) {
    // Lower bound of the first occupied bucket is a valid lower bound on the
    // delta's samples; the lifetime min cannot exceed the delta min, so the
    // tighter of the two stands in for it (and likewise for max).
    out.min_ = std::max(bucket_lower_bound(first), min_);
    const double upper =
        last + 1 < kBuckets ? bucket_lower_bound(last + 1) : max_;
    out.max_ = std::max(out.min_, std::min(upper, max_));
  }
  return out;
}

SlidingRate::SlidingRate(SimTime window) : window_(window) {
  VDEP_ASSERT(window > kTimeZero);
}

void SlidingRate::record(SimTime now) {
  VDEP_ASSERT_MSG(events_.empty() || now >= events_.back(),
                  "events must be recorded in time order");
  events_.push_back(now);
  evict(now);
}

double SlidingRate::rate(SimTime now) {
  evict(now);
  if (events_.empty()) return 0.0;
  return static_cast<double>(events_.size()) / to_sec(window_);
}

void SlidingRate::evict(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front() <= cutoff) events_.pop_front();
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace vdep
