// Invariant checking for the versatile-dependability library.
//
// VDEP_ASSERT is active in all build types: the library models fault-tolerant
// protocols whose correctness arguments rest on internal invariants, and a
// silently-violated invariant in RelWithDebInfo would invalidate every
// experiment built on top of it.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vdep {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "VDEP_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace vdep

#define VDEP_ASSERT(expr)                                        \
  do {                                                           \
    if (!(expr)) ::vdep::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define VDEP_ASSERT_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::vdep::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
