#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace vdep {

namespace {

// splitmix64: expands a single seed into well-distributed state words.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  VDEP_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  VDEP_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  VDEP_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::fork(std::uint64_t stream_index) {
  // Mix the parent's state with the stream index through splitmix; distinct
  // indices give decorrelated child streams without advancing the parent.
  std::uint64_t x = s_[0] ^ (s_[3] + 0x632be59bd9b4e019ULL * (stream_index + 1));
  return Rng(splitmix64(x));
}

}  // namespace vdep
