#include "util/payload.hpp"

namespace vdep {

Payload read_payload(ByteReader& r) {
  auto v = r.bytes_view();
  if (const auto& o = r.owner()) return Payload(o, v);
  return Payload::copy_of(v);
}

}  // namespace vdep
