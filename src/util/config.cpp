#include "util/config.hpp"

#include <stdexcept>
#include <vector>

namespace vdep {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(arg);
      continue;
    }
    const std::string key = arg.substr(0, eq);
    if (cfg.values_.contains(key)) {
      throw std::invalid_argument("duplicate config key: " + key);
    }
    cfg.values_[key] = arg.substr(eq + 1);
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_str(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for key " + key + ": " + *v);
}

}  // namespace vdep
