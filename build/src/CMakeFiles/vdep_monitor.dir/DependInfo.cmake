
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/bandwidth_meter.cpp" "src/CMakeFiles/vdep_monitor.dir/monitor/bandwidth_meter.cpp.o" "gcc" "src/CMakeFiles/vdep_monitor.dir/monitor/bandwidth_meter.cpp.o.d"
  "/root/repo/src/monitor/metrics.cpp" "src/CMakeFiles/vdep_monitor.dir/monitor/metrics.cpp.o" "gcc" "src/CMakeFiles/vdep_monitor.dir/monitor/metrics.cpp.o.d"
  "/root/repo/src/monitor/rate_estimator.cpp" "src/CMakeFiles/vdep_monitor.dir/monitor/rate_estimator.cpp.o" "gcc" "src/CMakeFiles/vdep_monitor.dir/monitor/rate_estimator.cpp.o.d"
  "/root/repo/src/monitor/replicated_state.cpp" "src/CMakeFiles/vdep_monitor.dir/monitor/replicated_state.cpp.o" "gcc" "src/CMakeFiles/vdep_monitor.dir/monitor/replicated_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
