# Empty dependencies file for vdep_monitor.
# This may be replaced when dependencies are built.
