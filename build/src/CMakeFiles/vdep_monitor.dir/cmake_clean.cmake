file(REMOVE_RECURSE
  "CMakeFiles/vdep_monitor.dir/monitor/bandwidth_meter.cpp.o"
  "CMakeFiles/vdep_monitor.dir/monitor/bandwidth_meter.cpp.o.d"
  "CMakeFiles/vdep_monitor.dir/monitor/metrics.cpp.o"
  "CMakeFiles/vdep_monitor.dir/monitor/metrics.cpp.o.d"
  "CMakeFiles/vdep_monitor.dir/monitor/rate_estimator.cpp.o"
  "CMakeFiles/vdep_monitor.dir/monitor/rate_estimator.cpp.o.d"
  "CMakeFiles/vdep_monitor.dir/monitor/replicated_state.cpp.o"
  "CMakeFiles/vdep_monitor.dir/monitor/replicated_state.cpp.o.d"
  "libvdep_monitor.a"
  "libvdep_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
