file(REMOVE_RECURSE
  "libvdep_monitor.a"
)
