# Empty compiler generated dependencies file for vdep_interpose.
# This may be replaced when dependencies are built.
