file(REMOVE_RECURSE
  "CMakeFiles/vdep_interpose.dir/interpose/interposer.cpp.o"
  "CMakeFiles/vdep_interpose.dir/interpose/interposer.cpp.o.d"
  "libvdep_interpose.a"
  "libvdep_interpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
