file(REMOVE_RECURSE
  "libvdep_interpose.a"
)
