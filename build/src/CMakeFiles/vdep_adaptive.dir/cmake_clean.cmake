file(REMOVE_RECURSE
  "CMakeFiles/vdep_adaptive.dir/adaptive/adaptation_manager.cpp.o"
  "CMakeFiles/vdep_adaptive.dir/adaptive/adaptation_manager.cpp.o.d"
  "CMakeFiles/vdep_adaptive.dir/adaptive/contract.cpp.o"
  "CMakeFiles/vdep_adaptive.dir/adaptive/contract.cpp.o.d"
  "CMakeFiles/vdep_adaptive.dir/adaptive/policy.cpp.o"
  "CMakeFiles/vdep_adaptive.dir/adaptive/policy.cpp.o.d"
  "CMakeFiles/vdep_adaptive.dir/adaptive/switch_protocol.cpp.o"
  "CMakeFiles/vdep_adaptive.dir/adaptive/switch_protocol.cpp.o.d"
  "libvdep_adaptive.a"
  "libvdep_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
