file(REMOVE_RECURSE
  "libvdep_adaptive.a"
)
