# Empty dependencies file for vdep_adaptive.
# This may be replaced when dependencies are built.
