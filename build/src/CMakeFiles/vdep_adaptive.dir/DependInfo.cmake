
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/adaptation_manager.cpp" "src/CMakeFiles/vdep_adaptive.dir/adaptive/adaptation_manager.cpp.o" "gcc" "src/CMakeFiles/vdep_adaptive.dir/adaptive/adaptation_manager.cpp.o.d"
  "/root/repo/src/adaptive/contract.cpp" "src/CMakeFiles/vdep_adaptive.dir/adaptive/contract.cpp.o" "gcc" "src/CMakeFiles/vdep_adaptive.dir/adaptive/contract.cpp.o.d"
  "/root/repo/src/adaptive/policy.cpp" "src/CMakeFiles/vdep_adaptive.dir/adaptive/policy.cpp.o" "gcc" "src/CMakeFiles/vdep_adaptive.dir/adaptive/policy.cpp.o.d"
  "/root/repo/src/adaptive/switch_protocol.cpp" "src/CMakeFiles/vdep_adaptive.dir/adaptive/switch_protocol.cpp.o" "gcc" "src/CMakeFiles/vdep_adaptive.dir/adaptive/switch_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
