# Empty dependencies file for vdep_harness.
# This may be replaced when dependencies are built.
