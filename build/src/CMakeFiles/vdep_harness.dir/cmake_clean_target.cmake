file(REMOVE_RECURSE
  "libvdep_harness.a"
)
