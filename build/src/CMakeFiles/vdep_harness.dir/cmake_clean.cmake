file(REMOVE_RECURSE
  "CMakeFiles/vdep_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/vdep_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/vdep_harness.dir/harness/report.cpp.o"
  "CMakeFiles/vdep_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/vdep_harness.dir/harness/scenario.cpp.o"
  "CMakeFiles/vdep_harness.dir/harness/scenario.cpp.o.d"
  "libvdep_harness.a"
  "libvdep_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
