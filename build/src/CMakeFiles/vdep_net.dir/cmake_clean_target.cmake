file(REMOVE_RECURSE
  "libvdep_net.a"
)
