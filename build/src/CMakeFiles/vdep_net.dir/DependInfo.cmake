
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/vdep_net.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/vdep_net.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/fault_plan.cpp" "src/CMakeFiles/vdep_net.dir/net/fault_plan.cpp.o" "gcc" "src/CMakeFiles/vdep_net.dir/net/fault_plan.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/vdep_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/vdep_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/vdep_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/vdep_net.dir/net/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
