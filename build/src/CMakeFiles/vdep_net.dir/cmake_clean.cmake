file(REMOVE_RECURSE
  "CMakeFiles/vdep_net.dir/net/channel.cpp.o"
  "CMakeFiles/vdep_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/vdep_net.dir/net/fault_plan.cpp.o"
  "CMakeFiles/vdep_net.dir/net/fault_plan.cpp.o.d"
  "CMakeFiles/vdep_net.dir/net/link.cpp.o"
  "CMakeFiles/vdep_net.dir/net/link.cpp.o.d"
  "CMakeFiles/vdep_net.dir/net/network.cpp.o"
  "CMakeFiles/vdep_net.dir/net/network.cpp.o.d"
  "libvdep_net.a"
  "libvdep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
