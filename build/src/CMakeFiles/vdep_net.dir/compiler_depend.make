# Empty compiler generated dependencies file for vdep_net.
# This may be replaced when dependencies are built.
