file(REMOVE_RECURSE
  "libvdep_util.a"
)
