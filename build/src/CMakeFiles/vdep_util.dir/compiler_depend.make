# Empty compiler generated dependencies file for vdep_util.
# This may be replaced when dependencies are built.
