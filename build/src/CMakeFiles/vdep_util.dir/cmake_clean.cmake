file(REMOVE_RECURSE
  "CMakeFiles/vdep_util.dir/util/bytes.cpp.o"
  "CMakeFiles/vdep_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/vdep_util.dir/util/config.cpp.o"
  "CMakeFiles/vdep_util.dir/util/config.cpp.o.d"
  "CMakeFiles/vdep_util.dir/util/logging.cpp.o"
  "CMakeFiles/vdep_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/vdep_util.dir/util/rng.cpp.o"
  "CMakeFiles/vdep_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/vdep_util.dir/util/stats.cpp.o"
  "CMakeFiles/vdep_util.dir/util/stats.cpp.o.d"
  "libvdep_util.a"
  "libvdep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
