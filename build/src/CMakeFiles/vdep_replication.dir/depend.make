# Empty dependencies file for vdep_replication.
# This may be replaced when dependencies are built.
