file(REMOVE_RECURSE
  "CMakeFiles/vdep_replication.dir/replication/active.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/active.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/checkpoint.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/checkpoint.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/client_coordinator.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/client_coordinator.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/cold_passive.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/cold_passive.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/hybrid.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/hybrid.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/message_log.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/message_log.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/replicator.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/replicator.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/reply_cache.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/reply_cache.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/semi_active.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/semi_active.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/types.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/types.cpp.o.d"
  "CMakeFiles/vdep_replication.dir/replication/warm_passive.cpp.o"
  "CMakeFiles/vdep_replication.dir/replication/warm_passive.cpp.o.d"
  "libvdep_replication.a"
  "libvdep_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
