file(REMOVE_RECURSE
  "libvdep_replication.a"
)
