
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/active.cpp" "src/CMakeFiles/vdep_replication.dir/replication/active.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/active.cpp.o.d"
  "/root/repo/src/replication/checkpoint.cpp" "src/CMakeFiles/vdep_replication.dir/replication/checkpoint.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/checkpoint.cpp.o.d"
  "/root/repo/src/replication/client_coordinator.cpp" "src/CMakeFiles/vdep_replication.dir/replication/client_coordinator.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/client_coordinator.cpp.o.d"
  "/root/repo/src/replication/cold_passive.cpp" "src/CMakeFiles/vdep_replication.dir/replication/cold_passive.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/cold_passive.cpp.o.d"
  "/root/repo/src/replication/hybrid.cpp" "src/CMakeFiles/vdep_replication.dir/replication/hybrid.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/hybrid.cpp.o.d"
  "/root/repo/src/replication/message_log.cpp" "src/CMakeFiles/vdep_replication.dir/replication/message_log.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/message_log.cpp.o.d"
  "/root/repo/src/replication/replicator.cpp" "src/CMakeFiles/vdep_replication.dir/replication/replicator.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/replicator.cpp.o.d"
  "/root/repo/src/replication/reply_cache.cpp" "src/CMakeFiles/vdep_replication.dir/replication/reply_cache.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/reply_cache.cpp.o.d"
  "/root/repo/src/replication/semi_active.cpp" "src/CMakeFiles/vdep_replication.dir/replication/semi_active.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/semi_active.cpp.o.d"
  "/root/repo/src/replication/types.cpp" "src/CMakeFiles/vdep_replication.dir/replication/types.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/types.cpp.o.d"
  "/root/repo/src/replication/warm_passive.cpp" "src/CMakeFiles/vdep_replication.dir/replication/warm_passive.cpp.o" "gcc" "src/CMakeFiles/vdep_replication.dir/replication/warm_passive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
