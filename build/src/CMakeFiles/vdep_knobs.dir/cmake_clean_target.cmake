file(REMOVE_RECURSE
  "libvdep_knobs.a"
)
