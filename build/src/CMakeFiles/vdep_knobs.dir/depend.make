# Empty dependencies file for vdep_knobs.
# This may be replaced when dependencies are built.
