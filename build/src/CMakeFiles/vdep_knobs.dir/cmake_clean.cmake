file(REMOVE_RECURSE
  "CMakeFiles/vdep_knobs.dir/knobs/availability.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/availability.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/cost.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/cost.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/design_space.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/design_space.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/knob.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/knob.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/low_level.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/low_level.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/scalability.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/scalability.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/throughput.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/throughput.cpp.o.d"
  "CMakeFiles/vdep_knobs.dir/knobs/versatile.cpp.o"
  "CMakeFiles/vdep_knobs.dir/knobs/versatile.cpp.o.d"
  "libvdep_knobs.a"
  "libvdep_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
