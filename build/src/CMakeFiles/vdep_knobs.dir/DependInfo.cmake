
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knobs/availability.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/availability.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/availability.cpp.o.d"
  "/root/repo/src/knobs/cost.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/cost.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/cost.cpp.o.d"
  "/root/repo/src/knobs/design_space.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/design_space.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/design_space.cpp.o.d"
  "/root/repo/src/knobs/knob.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/knob.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/knob.cpp.o.d"
  "/root/repo/src/knobs/low_level.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/low_level.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/low_level.cpp.o.d"
  "/root/repo/src/knobs/scalability.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/scalability.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/scalability.cpp.o.d"
  "/root/repo/src/knobs/throughput.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/throughput.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/throughput.cpp.o.d"
  "/root/repo/src/knobs/versatile.cpp" "src/CMakeFiles/vdep_knobs.dir/knobs/versatile.cpp.o" "gcc" "src/CMakeFiles/vdep_knobs.dir/knobs/versatile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
