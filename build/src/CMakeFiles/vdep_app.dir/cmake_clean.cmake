file(REMOVE_RECURSE
  "CMakeFiles/vdep_app.dir/app/kv_store.cpp.o"
  "CMakeFiles/vdep_app.dir/app/kv_store.cpp.o.d"
  "CMakeFiles/vdep_app.dir/app/test_app.cpp.o"
  "CMakeFiles/vdep_app.dir/app/test_app.cpp.o.d"
  "CMakeFiles/vdep_app.dir/app/workload.cpp.o"
  "CMakeFiles/vdep_app.dir/app/workload.cpp.o.d"
  "libvdep_app.a"
  "libvdep_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
