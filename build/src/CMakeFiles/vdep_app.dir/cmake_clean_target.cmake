file(REMOVE_RECURSE
  "libvdep_app.a"
)
