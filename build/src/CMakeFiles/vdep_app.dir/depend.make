# Empty dependencies file for vdep_app.
# This may be replaced when dependencies are built.
