file(REMOVE_RECURSE
  "libvdep_gcs.a"
)
