# Empty dependencies file for vdep_gcs.
# This may be replaced when dependencies are built.
