file(REMOVE_RECURSE
  "CMakeFiles/vdep_gcs.dir/gcs/daemon.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/daemon.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/endpoint.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/endpoint.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/failure_detector.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/failure_detector.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/membership.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/membership.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/message.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/message.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/ordering.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/ordering.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/reliable_link.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/reliable_link.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/vector_clock.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/vector_clock.cpp.o.d"
  "CMakeFiles/vdep_gcs.dir/gcs/view.cpp.o"
  "CMakeFiles/vdep_gcs.dir/gcs/view.cpp.o.d"
  "libvdep_gcs.a"
  "libvdep_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
