# Empty compiler generated dependencies file for vdep_sim.
# This may be replaced when dependencies are built.
