file(REMOVE_RECURSE
  "CMakeFiles/vdep_sim.dir/sim/actor.cpp.o"
  "CMakeFiles/vdep_sim.dir/sim/actor.cpp.o.d"
  "CMakeFiles/vdep_sim.dir/sim/cpu.cpp.o"
  "CMakeFiles/vdep_sim.dir/sim/cpu.cpp.o.d"
  "CMakeFiles/vdep_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/vdep_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/vdep_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/vdep_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/vdep_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/vdep_sim.dir/sim/trace.cpp.o.d"
  "libvdep_sim.a"
  "libvdep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
