file(REMOVE_RECURSE
  "libvdep_sim.a"
)
