
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/actor.cpp" "src/CMakeFiles/vdep_sim.dir/sim/actor.cpp.o" "gcc" "src/CMakeFiles/vdep_sim.dir/sim/actor.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/vdep_sim.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/vdep_sim.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/vdep_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/vdep_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/CMakeFiles/vdep_sim.dir/sim/kernel.cpp.o" "gcc" "src/CMakeFiles/vdep_sim.dir/sim/kernel.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/vdep_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/vdep_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
