
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/cdr.cpp" "src/CMakeFiles/vdep_orb.dir/orb/cdr.cpp.o" "gcc" "src/CMakeFiles/vdep_orb.dir/orb/cdr.cpp.o.d"
  "/root/repo/src/orb/giop.cpp" "src/CMakeFiles/vdep_orb.dir/orb/giop.cpp.o" "gcc" "src/CMakeFiles/vdep_orb.dir/orb/giop.cpp.o.d"
  "/root/repo/src/orb/orb_core.cpp" "src/CMakeFiles/vdep_orb.dir/orb/orb_core.cpp.o" "gcc" "src/CMakeFiles/vdep_orb.dir/orb/orb_core.cpp.o.d"
  "/root/repo/src/orb/poa.cpp" "src/CMakeFiles/vdep_orb.dir/orb/poa.cpp.o" "gcc" "src/CMakeFiles/vdep_orb.dir/orb/poa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
