file(REMOVE_RECURSE
  "CMakeFiles/vdep_orb.dir/orb/cdr.cpp.o"
  "CMakeFiles/vdep_orb.dir/orb/cdr.cpp.o.d"
  "CMakeFiles/vdep_orb.dir/orb/giop.cpp.o"
  "CMakeFiles/vdep_orb.dir/orb/giop.cpp.o.d"
  "CMakeFiles/vdep_orb.dir/orb/orb_core.cpp.o"
  "CMakeFiles/vdep_orb.dir/orb/orb_core.cpp.o.d"
  "CMakeFiles/vdep_orb.dir/orb/poa.cpp.o"
  "CMakeFiles/vdep_orb.dir/orb/poa.cpp.o.d"
  "libvdep_orb.a"
  "libvdep_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdep_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
