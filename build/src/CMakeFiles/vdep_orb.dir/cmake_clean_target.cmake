file(REMOVE_RECURSE
  "libvdep_orb.a"
)
