# Empty compiler generated dependencies file for vdep_orb.
# This may be replaced when dependencies are built.
