# Empty dependencies file for fig9_design_space.
# This may be replaced when dependencies are built.
