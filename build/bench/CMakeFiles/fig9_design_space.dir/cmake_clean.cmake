file(REMOVE_RECURSE
  "CMakeFiles/fig9_design_space.dir/fig9_design_space.cpp.o"
  "CMakeFiles/fig9_design_space.dir/fig9_design_space.cpp.o.d"
  "fig9_design_space"
  "fig9_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
