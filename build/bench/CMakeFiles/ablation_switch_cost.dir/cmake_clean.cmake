file(REMOVE_RECURSE
  "CMakeFiles/ablation_switch_cost.dir/ablation_switch_cost.cpp.o"
  "CMakeFiles/ablation_switch_cost.dir/ablation_switch_cost.cpp.o.d"
  "ablation_switch_cost"
  "ablation_switch_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_switch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
