# Empty dependencies file for ablation_switch_cost.
# This may be replaced when dependencies are built.
