# Empty compiler generated dependencies file for fig8_scalability_knob.
# This may be replaced when dependencies are built.
