file(REMOVE_RECURSE
  "CMakeFiles/fig8_scalability_knob.dir/fig8_scalability_knob.cpp.o"
  "CMakeFiles/fig8_scalability_knob.dir/fig8_scalability_knob.cpp.o.d"
  "fig8_scalability_knob"
  "fig8_scalability_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scalability_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
