
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_scalability_knob.cpp" "bench/CMakeFiles/fig8_scalability_knob.dir/fig8_scalability_knob.cpp.o" "gcc" "bench/CMakeFiles/fig8_scalability_knob.dir/fig8_scalability_knob.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
