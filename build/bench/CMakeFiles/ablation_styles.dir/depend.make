# Empty dependencies file for ablation_styles.
# This may be replaced when dependencies are built.
