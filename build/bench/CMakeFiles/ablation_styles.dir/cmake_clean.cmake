file(REMOVE_RECURSE
  "CMakeFiles/ablation_styles.dir/ablation_styles.cpp.o"
  "CMakeFiles/ablation_styles.dir/ablation_styles.cpp.o.d"
  "ablation_styles"
  "ablation_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
