# Empty dependencies file for fig6_adaptive.
# This may be replaced when dependencies are built.
