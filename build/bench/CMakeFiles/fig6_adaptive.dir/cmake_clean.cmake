file(REMOVE_RECURSE
  "CMakeFiles/fig6_adaptive.dir/fig6_adaptive.cpp.o"
  "CMakeFiles/fig6_adaptive.dir/fig6_adaptive.cpp.o.d"
  "fig6_adaptive"
  "fig6_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
