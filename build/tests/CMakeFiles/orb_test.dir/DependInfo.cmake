
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/orb_cdr_test.cpp" "tests/CMakeFiles/orb_test.dir/orb_cdr_test.cpp.o" "gcc" "tests/CMakeFiles/orb_test.dir/orb_cdr_test.cpp.o.d"
  "/root/repo/tests/orb_core_test.cpp" "tests/CMakeFiles/orb_test.dir/orb_core_test.cpp.o" "gcc" "tests/CMakeFiles/orb_test.dir/orb_core_test.cpp.o.d"
  "/root/repo/tests/orb_giop_test.cpp" "tests/CMakeFiles/orb_test.dir/orb_giop_test.cpp.o" "gcc" "tests/CMakeFiles/orb_test.dir/orb_giop_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdep_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_knobs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
