# Empty dependencies file for monitor_adaptive_test.
# This may be replaced when dependencies are built.
