file(REMOVE_RECURSE
  "CMakeFiles/monitor_adaptive_test.dir/adaptive_test.cpp.o"
  "CMakeFiles/monitor_adaptive_test.dir/adaptive_test.cpp.o.d"
  "CMakeFiles/monitor_adaptive_test.dir/monitor_test.cpp.o"
  "CMakeFiles/monitor_adaptive_test.dir/monitor_test.cpp.o.d"
  "monitor_adaptive_test"
  "monitor_adaptive_test.pdb"
  "monitor_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
