# Empty compiler generated dependencies file for mission_modes.
# This may be replaced when dependencies are built.
