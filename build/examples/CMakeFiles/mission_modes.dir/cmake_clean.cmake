file(REMOVE_RECURSE
  "CMakeFiles/mission_modes.dir/mission_modes.cpp.o"
  "CMakeFiles/mission_modes.dir/mission_modes.cpp.o.d"
  "mission_modes"
  "mission_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
