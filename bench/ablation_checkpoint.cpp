// Ablation: the checkpointing-frequency low-level knob (Table 1).
//
// Sweeps both flavours of the knob for a warm-passive group — the periodic
// interval and the every-N-requests trigger — and reports the
// latency/bandwidth trade-off each setting lands on. This quantifies the
// knob the paper lists but never plots: more frequent checkpoints cost
// bandwidth and quiescence latency but shorten failover replay.
//
// Usage: ablation_checkpoint [requests=4000] [seed=42] [clients=3]
#include <cstdio>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

harness::ExperimentResult run_point(const Config& cfg, SimTime interval,
                                    std::uint32_t every) {
  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = static_cast<int>(cfg.get_int("clients", 3));
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.checkpoint_interval = interval;
  config.checkpoint_every_requests = every;

  harness::Scenario scenario(config);
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 4000));
  return scenario.run_closed_loop(cycle);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  std::printf("Ablation — checkpointing frequency (warm passive, 3 replicas, "
              "%lld clients)\n\n",
              static_cast<long long>(cfg.get_int("clients", 3)));

  std::printf("periodic interval sweep (request trigger disabled):\n");
  harness::Table t1({"interval [ms]", "mean RTT [us]", "jitter [us]",
                     "bandwidth [MB/s]", "throughput [req/s]"});
  for (long long ms : {10, 20, 50, 100, 200}) {
    const auto r = run_point(cfg, msec(ms), 0);
    t1.add_row({std::to_string(ms), harness::Table::num(r.avg_latency_us),
                harness::Table::num(r.jitter_us),
                harness::Table::num(r.bandwidth_mbps, 3),
                harness::Table::num(r.throughput_rps)});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("every-N-requests sweep (with the default %lld ms floor):\n",
              static_cast<long long>(to_msec(calib::kDefaultCheckpointInterval)));
  harness::Table t2({"N [requests]", "mean RTT [us]", "jitter [us]",
                     "bandwidth [MB/s]", "throughput [req/s]"});
  for (std::uint32_t n : {10u, 25u, 50u, 100u, 250u}) {
    const auto r = run_point(cfg, calib::kDefaultCheckpointInterval, n);
    t2.add_row({std::to_string(n), harness::Table::num(r.avg_latency_us),
                harness::Table::num(r.jitter_us),
                harness::Table::num(r.bandwidth_mbps, 3),
                harness::Table::num(r.throughput_rps)});
  }
  std::printf("%s", t2.render().c_str());
  return 0;
}
