// Micro-benchmarks of the observability layer (google-benchmark).
//
// Two questions, answered in real (not simulated) time:
//  1. What does a span cost?  BM_SpanDisabled is the hot-path guarantee: a
//     disabled tracer must cost one predictable branch per call site, so
//     tracing can stay compiled into every layer. BM_SpanEnabled and
//     BM_SpanEnabledNoted price the recording path.
//  2. What does tracing do to an experiment?  BM_ScenarioTracing{Off,On}
//     runs the same seeded closed-loop replicated scenario both ways; the
//     simulated results are identical (same wire bytes, same event order) so
//     the delta is pure host-side recording overhead. run_bench.sh compares
//     the pair into BENCH_obs.json.
#include <benchmark/benchmark.h>

#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "util/time.hpp"

using namespace vdep;

namespace {

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer tracer([] { return kTimeZero; });
  for (auto _ : state) {
    obs::Span span = tracer.start_span("bench.op", "bench", "proc");
    span.note("key", "value");
    benchmark::DoNotOptimize(span);
  }
  if (tracer.spans_recorded() != 0) state.SkipWithError("disabled tracer recorded");
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  SimTime now = kTimeZero;
  obs::Tracer tracer([&now] { return now; });
  tracer.enable();
  for (auto _ : state) {
    now = now + nsec(1);
    obs::Span span = tracer.start_span("bench.op", "bench", "proc");
    benchmark::DoNotOptimize(span);
    if (tracer.spans_recorded() >= obs::Tracer::kDefaultCapacity) tracer.clear();
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledNoted(benchmark::State& state) {
  SimTime now = kTimeZero;
  obs::Tracer tracer([&now] { return now; });
  tracer.enable();
  for (auto _ : state) {
    now = now + nsec(1);
    obs::Span span = tracer.start_span("bench.op", "bench", "proc");
    span.note("outcome", "executed");
    span.note("op", "process");
    benchmark::DoNotOptimize(span);
    if (tracer.spans_recorded() >= obs::Tracer::kDefaultCapacity) tracer.clear();
  }
}
BENCHMARK(BM_SpanEnabledNoted);

void BM_ScopeEnterExit(benchmark::State& state) {
  SimTime now = kTimeZero;
  obs::Tracer tracer([&now] { return now; });
  tracer.enable();
  obs::Span root = tracer.start_span("root", "bench", "proc");
  const obs::TraceContext ctx = root.context();
  for (auto _ : state) {
    obs::Tracer::Scope scope(tracer, ctx);
    benchmark::DoNotOptimize(tracer.current());
  }
}
BENCHMARK(BM_ScopeEnterExit);

// One full replicated closed-loop cycle (2 clients x 200 requests, 3 active
// replicas) — the end-to-end cost of an experiment with tracing off vs on.
void run_scenario(bool tracing, benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig config;
    config.seed = 42;
    config.clients = 2;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = replication::ReplicationStyle::kActive;
    config.tracing = tracing;
    harness::Scenario scenario(config);
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 200;
    cycle.warmup_requests = 0;
    const auto result = scenario.run_closed_loop(cycle);
    benchmark::DoNotOptimize(result);
    if (tracing) {
      state.counters["spans"] = benchmark::Counter(
          static_cast<double>(scenario.kernel().tracer().spans_recorded()));
    }
  }
}

void BM_ScenarioTracingOff(benchmark::State& state) { run_scenario(false, state); }
BENCHMARK(BM_ScenarioTracingOff)->Unit(benchmark::kMillisecond);

void BM_ScenarioTracingOn(benchmark::State& state) { run_scenario(true, state); }
BENCHMARK(BM_ScenarioTracingOn)->Unit(benchmark::kMillisecond);

// Export cost: render a realistic recording both ways.
void BM_ExportChromeTrace(benchmark::State& state) {
  harness::ScenarioConfig config;
  config.seed = 42;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.tracing = true;
  harness::Scenario scenario(config);
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 200;
  cycle.warmup_requests = 0;
  (void)scenario.run_closed_loop(cycle);
  const obs::Tracer& tracer = scenario.kernel().tracer();
  for (auto _ : state) {
    std::string json = obs::to_chrome_trace(tracer);
    benchmark::DoNotOptimize(json);
  }
  state.counters["spans"] =
      benchmark::Counter(static_cast<double>(tracer.spans_recorded()));
}
BENCHMARK(BM_ExportChromeTrace)->Unit(benchmark::kMillisecond);

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
