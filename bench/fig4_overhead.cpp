// Figure 4: overhead of the replicator for a remote client-server
// application. Six configurations, means with jitter error bars:
//   1. no interceptor (plain TCP baseline)
//   2. client intercepted (system calls hooked, messages unmodified)
//   3. server intercepted
//   4. server & client intercepted
//   5. warm passive replication, 1 replica
//   6. active replication, 1 replica
//
// Expected shape (paper): interception alone adds little; the replication
// mechanisms (group communication underneath) roughly double the round-trip
// and add jitter, warm passive jitteriest of all (checkpoint blackouts).
//
// Usage: fig4_overhead [requests=10000] [seed=42]
#include <cstdio>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

struct Mode {
  const char* label;
  bool replicated;
  interpose::InterceptMode intercept;
  replication::ReplicationStyle style;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int requests = static_cast<int>(cfg.get_int("requests", 10000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const Mode modes[] = {
      {"No interceptor", false, interpose::InterceptMode::kNone,
       replication::ReplicationStyle::kActive},
      {"Client intercepted", false, interpose::InterceptMode::kClientOnly,
       replication::ReplicationStyle::kActive},
      {"Server intercepted", false, interpose::InterceptMode::kServerOnly,
       replication::ReplicationStyle::kActive},
      {"Server & client intercepted", false, interpose::InterceptMode::kBoth,
       replication::ReplicationStyle::kActive},
      {"Warm passive (1 replica)", true, interpose::InterceptMode::kNone,
       replication::ReplicationStyle::kWarmPassive},
      {"Active (1 replica)", true, interpose::InterceptMode::kNone,
       replication::ReplicationStyle::kActive},
  };

  std::printf("Figure 4 — overhead of the replicator (remote client-server)\n");
  std::printf("(%d-request cycle per configuration; bars show mean +/- jitter)\n\n",
              requests);

  std::vector<harness::Bar> bars;
  harness::Table table({"configuration", "mean RTT [us]", "jitter [us]", "p99 [us]"});

  for (const Mode& mode : modes) {
    harness::ScenarioConfig config;
    config.seed = seed;
    config.clients = 1;
    config.replicas = 1;
    config.max_replicas = 1;
    config.replicated = mode.replicated;
    config.intercept = mode.intercept;
    config.style = mode.style;

    harness::Scenario scenario(config);
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = requests;
    const harness::ExperimentResult result = scenario.run_closed_loop(cycle);

    bars.push_back({mode.label, result.avg_latency_us, result.jitter_us});
    table.add_row({mode.label, harness::Table::num(result.avg_latency_us),
                   harness::Table::num(result.jitter_us),
                   harness::Table::num(result.p99_latency_us)});
  }

  std::printf("%s\n", harness::render_bars("round-trip time", "us", bars).c_str());
  std::printf("%s", table.render().c_str());
  return 0;
}
