// Micro-benchmarks of the live health plane (google-benchmark).
//
// Two questions, answered in real (not simulated) time:
//  1. What do the health-plane primitives cost?  BM_PhiHeartbeat /
//     BM_PhiQuery price one heartbeat observation and one suspicion query
//     (both run on every phi tick for every link); BM_WindowCut prices one
//     telemetry window cut over a realistic registry; BM_SloEvaluate prices
//     one SLO evaluation against the windowed series.
//  2. What does the health plane do to an experiment?  BM_ScenarioHealth{Off,On}
//     runs the same seeded closed-loop replicated scenario both ways; the
//     simulated results are identical (the monitor only observes), so the
//     delta is the full health-plane cost: per-request SLO metric feeds plus
//     all windowed cuts, phi ticks and SLO evaluations. bench/run_bench.sh
//     records the pair into BENCH_obs.json next to the tracer costs.
#include <benchmark/benchmark.h>

#include "harness/scenario.hpp"
#include "monitor/health/phi_accrual.hpp"
#include "monitor/health/slo.hpp"
#include "monitor/health/window.hpp"
#include "monitor/metrics.hpp"
#include "util/time.hpp"

using namespace vdep;

namespace {

void BM_PhiHeartbeat(benchmark::State& state) {
  monitor::health::PhiAccrualDetector detector;
  SimTime now = kTimeZero;
  for (auto _ : state) {
    now += msec(20);
    detector.heartbeat(now);
    benchmark::DoNotOptimize(detector);
  }
}
BENCHMARK(BM_PhiHeartbeat);

void BM_PhiQuery(benchmark::State& state) {
  monitor::health::PhiAccrualDetector detector;
  SimTime now = kTimeZero;
  for (int i = 0; i < 64; ++i) {
    now += msec(20);
    detector.heartbeat(now);
  }
  SimTime query = now;
  for (auto _ : state) {
    query += usec(1);
    benchmark::DoNotOptimize(detector.phi(query));
  }
}
BENCHMARK(BM_PhiQuery);

// One telemetry cut over a registry shaped like a running scenario's: a
// handful of counters, gauges and latency distributions, with fresh samples
// between cuts so every histogram contributes a delta.
void BM_WindowCut(benchmark::State& state) {
  monitor::MetricsRegistry registry;
  monitor::health::TimeSeries series(64);
  SimTime now = kTimeZero;
  std::uint64_t tick = 0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      registry.add("service.requests");
      registry.observe("service.latency_us", 1000.0 + static_cast<double>(tick % 64));
      registry.observe("gcs.delivery_us", 180.0 + static_cast<double>(tick % 16));
      ++tick;
    }
    registry.set_gauge("health.phi_max", 0.3);
    now += msec(100);
    benchmark::DoNotOptimize(series.cut(registry, now));
  }
}
BENCHMARK(BM_WindowCut);

void BM_SloEvaluate(benchmark::State& state) {
  monitor::MetricsRegistry registry;
  monitor::health::TimeSeries series(64);
  SimTime now = kTimeZero;
  for (int w = 0; w < 64; ++w) {
    for (int i = 0; i < 50; ++i) {
      registry.add("service.requests");
      registry.observe("service.latency_us", 900.0 + i);
    }
    now += msec(100);
    series.cut(registry, now);
  }
  monitor::health::SloSpec spec;
  spec.name = "service";
  spec.latency_metric = "service.latency_us";
  spec.request_counter = "service.requests";
  const monitor::health::SloTracker tracker(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.evaluate(series));
  }
}
BENCHMARK(BM_SloEvaluate);

// One full replicated closed-loop cycle (2 clients x 200 requests, 3 active
// replicas) — the end-to-end cost of an experiment with the health plane off
// vs on. The acceptance bar: the delta stays within a few percent.
void run_scenario(bool health, benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig config;
    config.seed = 42;
    config.clients = 2;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = replication::ReplicationStyle::kActive;
    config.health = health;
    harness::Scenario scenario(config);
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 200;
    cycle.warmup_requests = 0;
    const auto result = scenario.run_closed_loop(cycle);
    benchmark::DoNotOptimize(result);
    if (health) {
      state.counters["windows"] = benchmark::Counter(
          static_cast<double>(scenario.health().series().windows_cut()));
      state.counters["events"] = benchmark::Counter(
          static_cast<double>(scenario.health().events().size()));
    }
  }
}

void BM_ScenarioHealthOff(benchmark::State& state) { run_scenario(false, state); }
BENCHMARK(BM_ScenarioHealthOff)->Unit(benchmark::kMillisecond);

void BM_ScenarioHealthOn(benchmark::State& state) { run_scenario(true, state); }
BENCHMARK(BM_ScenarioHealthOn)->Unit(benchmark::kMillisecond);

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
