// Figure 9: active and passive replication in the dependability design
// space. The Fig. 7 data set, with fault-tolerance, performance and resource
// usage normalized to their maxima. Each style occupies a *region* (many
// configurations), and the two regions do not overlap — the knobs let the
// system take any position within either.
//
// Usage: fig9_design_space [requests=10000] [seed=42]
#include <algorithm>
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  harness::SweepConfig sweep;
  sweep.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  sweep.requests_per_client = static_cast<int>(cfg.get_int("requests", 10000));

  std::printf("Figure 9 — active and passive replication in the dependability "
              "design space\n");
  std::printf("(all axes normalized to the data set's maxima; performance = "
              "min latency / latency)\n\n");
  const knobs::DesignSpaceMap map = harness::profile_design_space(sweep);
  const auto normalized = map.normalized();

  harness::Table table({"config", "clients", "fault-tolerance", "performance",
                        "resources"});
  for (const auto& n : normalized) {
    table.add_row({n.config.code(), std::to_string(n.clients),
                   harness::Table::num(n.fault_tolerance, 2),
                   harness::Table::num(n.performance, 2),
                   harness::Table::num(n.resources, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Region summary per style: the bounding box each replication style covers.
  for (auto style : {replication::ReplicationStyle::kActive,
                     replication::ReplicationStyle::kWarmPassive}) {
    double perf_lo = 1.0, perf_hi = 0.0, res_lo = 1.0, res_hi = 0.0, ft_hi = 0.0;
    for (const auto& n : normalized) {
      if (n.config.style != style) continue;
      perf_lo = std::min(perf_lo, n.performance);
      perf_hi = std::max(perf_hi, n.performance);
      res_lo = std::min(res_lo, n.resources);
      res_hi = std::max(res_hi, n.resources);
      ft_hi = std::max(ft_hi, n.fault_tolerance);
    }
    std::printf("%s region: performance [%.2f, %.2f], resources [%.2f, %.2f], "
                "fault-tolerance up to %.2f\n",
                replication::to_string(style).c_str(), perf_lo, perf_hi, res_lo,
                res_hi, ft_hi);
  }

  // The paper's non-overlap claim, checked on the measured data: at equal
  // fault-tolerance, the styles separate cleanly in performance.
  bool overlap = false;
  for (const auto& a : normalized) {
    if (a.config.style != replication::ReplicationStyle::kActive) continue;
    for (const auto& p : normalized) {
      if (p.config.style != replication::ReplicationStyle::kWarmPassive) continue;
      if (p.config.replicas == a.config.replicas && p.clients == a.clients &&
          p.config.replicas > 1 && p.performance >= a.performance) {
        overlap = true;
      }
    }
  }
  std::printf("\nregions %s in performance at equal {replicas, clients} "
              "(paper: \"the two regions are non-overlapping\")\n",
              overlap ? "OVERLAP" : "do not overlap");
  return 0;
}
