// Ablation: all four replication styles, including the paper's planned
// extensions (cold passive and Delta-4-style semi-active), on the same
// workload — does the wider style palette widen the covered region of the
// design space (paper Sec. 6)?
//
// Two parts:
//   1. steady-state latency/bandwidth for each style at 3 replicas;
//   2. failover behaviour: the primary/responder crashes mid-run; every
//      style must finish the cycle (exactly-once), and the recovery shows up
//      as tail latency — instant for active/semi-active, log replay for warm
//      passive, launch delay + replay for cold passive.
//
// Usage: ablation_styles [requests=3000] [seed=42]
#include <cstdio>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

constexpr replication::ReplicationStyle kStyles[] = {
    replication::ReplicationStyle::kActive,
    replication::ReplicationStyle::kSemiActive,
    replication::ReplicationStyle::kHybrid,
    replication::ReplicationStyle::kWarmPassive,
    replication::ReplicationStyle::kColdPassive,
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int requests = static_cast<int>(cfg.get_int("requests", 3000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf("Ablation — replication styles (3 replicas; includes the paper's "
              "planned extension styles: semi-active, cold passive, and the Sec. 6 "
              "hybrid = 2 active + 1 warm observer)\n\n");

  std::printf("steady state, 3 clients:\n");
  harness::Table t1({"style", "mean RTT [us]", "jitter [us]", "bandwidth [MB/s]",
                     "throughput [req/s]"});
  for (auto style : kStyles) {
    harness::ScenarioConfig config;
    config.seed = seed;
    config.clients = 3;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = style;
    harness::Scenario scenario(config);
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = requests;
    const auto r = scenario.run_closed_loop(cycle);
    t1.add_row({replication::to_string(style), harness::Table::num(r.avg_latency_us),
                harness::Table::num(r.jitter_us),
                harness::Table::num(r.bandwidth_mbps, 3),
                harness::Table::num(r.throughput_rps)});
  }
  std::printf("%s\n", t1.render().c_str());

  std::printf("failover: responder crashes 1 s into the cycle (1 client):\n");
  harness::Table t2({"style", "completed", "mean RTT [us]", "p99 [us]",
                     "max RTT [us] (recovery gap)", "retransmissions"});
  for (auto style : kStyles) {
    harness::ScenarioConfig config;
    config.seed = seed;
    config.clients = 1;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = style;
    harness::Scenario scenario(config);
    scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = requests;
    const auto r = scenario.run_closed_loop(cycle);

    t2.add_row({replication::to_string(style), std::to_string(r.completed),
                harness::Table::num(r.avg_latency_us),
                harness::Table::num(r.p99_latency_us),
                harness::Table::num(r.max_latency_us),
                std::to_string(r.retransmissions)});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("note: active/semi-active absorb the crash with no client-visible "
              "gap; warm passive pays log replay; cold passive additionally pays "
              "the launch delay (visible as retransmissions + p99).\n");
  return 0;
}
