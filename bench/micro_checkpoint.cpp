// Micro-benchmarks of incremental checkpointing (google-benchmark).
//
// Two levels, pinning the headline claim (>= 5x fewer checkpoint bytes at
// 1% dirty keys) into BENCH_checkpoint.json:
//  1. BM_KvDeltaCut — the application layer: cutting a dirty-set delta of a
//     4096-key store at a swept dirty percentage, vs. BM_KvFullSnapshot.
//     Counters report encoded sizes and the full/delta reduction factor.
//  2. BM_CheckpointStream — the wire: a live 2-replica warm-passive group
//     runs the same seeded sparse-write checkpoint schedule with anchor
//     interval K; the counter is the primary's actual multicast checkpoint
//     bytes (encoded CheckpointMsg, headers and all). K=1 is the seed
//     protocol baseline, so the pair doubles as the full-anchor-path
//     regression guard.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>

#include "app/kv_store.hpp"
#include "harness/scenario.hpp"
#include "util/time.hpp"

using namespace vdep;

namespace {

constexpr int kKeys = 4096;
constexpr int kValueBytes = 64;

void seed_store(app::KvStoreServant& kv) {
  for (int i = 0; i < kKeys; ++i) {
    (void)kv.invoke("put",
                    app::KvStoreServant::encode_put("key" + std::to_string(i),
                                                    std::string(kValueBytes, 'v')));
  }
}

void BM_KvFullSnapshot(benchmark::State& state) {
  app::KvStoreServant kv;
  seed_store(kv);
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes snapshot = kv.snapshot();
    bytes = snapshot.size();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_KvFullSnapshot);

// Arg: percentage of keys dirtied between cuts (1 = the headline case).
void BM_KvDeltaCut(benchmark::State& state) {
  app::KvStoreServant kv;
  seed_store(kv);
  const int dirty =
      std::max(1, kKeys * static_cast<int>(state.range(0)) / 100);
  const std::size_t full_bytes = kv.snapshot().size();
  std::size_t delta_bytes = 0;
  int offset = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::uint64_t cut = kv.cut_epoch();
    for (int i = 0; i < dirty; ++i) {
      const int key = (offset + i * (kKeys / dirty)) % kKeys;
      (void)kv.invoke("put",
                      app::KvStoreServant::encode_put(
                          "key" + std::to_string(key), std::string(kValueBytes, 'w')));
    }
    ++offset;
    state.ResumeTiming();
    auto delta = kv.snapshot_delta(cut);
    if (!delta) {
      state.SkipWithError("delta unanswerable");
      break;
    }
    delta_bytes = delta->size();
    benchmark::DoNotOptimize(delta);
  }
  state.counters["full_bytes"] = static_cast<double>(full_bytes);
  state.counters["delta_bytes"] = static_cast<double>(delta_bytes);
  state.counters["reduction_x"] =
      delta_bytes == 0 ? 0.0
                       : static_cast<double>(full_bytes) / static_cast<double>(delta_bytes);
}
BENCHMARK(BM_KvDeltaCut)->Arg(1)->Arg(10)->Arg(50)->ArgName("dirty_pct");

// Arg: checkpoint_anchor_interval K. One iteration = one full scenario run:
// seed 256 keys, anchor, then 12 single-key-write checkpoint rounds. The
// schedule is identical for every K, so checkpoint_bytes compares directly.
void BM_CheckpointStream(benchmark::State& state) {
  const auto anchor_interval = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t bytes = 0;
  std::uint64_t cuts = 0;
  for (auto _ : state) {
    harness::ScenarioConfig config;
    config.clients = 1;
    config.replicas = 2;
    config.max_replicas = 2;
    config.style = replication::ReplicationStyle::kWarmPassive;
    config.checkpoint_anchor_interval = anchor_interval;
    config.checkpoint_interval = sec(600);  // cuts driven manually below
    config.checkpoint_every_requests = 1000000;
    config.make_servant = [](int) { return std::make_unique<app::KvStoreServant>(); };
    harness::Scenario scenario(config);
    scenario.kernel().run_until(msec(300));

    auto& kv = dynamic_cast<app::KvStoreServant&>(scenario.app(0));
    for (int i = 0; i < 256; ++i) {
      (void)kv.invoke("put",
                      app::KvStoreServant::encode_put("key" + std::to_string(i),
                                                      std::string(kValueBytes, 'v')));
    }
    scenario.replicator(0).take_checkpoint(/*force_full=*/true);
    scenario.drain();
    for (int round = 0; round < 12; ++round) {
      (void)kv.invoke("put", app::KvStoreServant::encode_put(
                                 "key" + std::to_string(round % 3),
                                 "round" + std::to_string(round)));
      scenario.replicator(0).take_checkpoint();
      scenario.drain();
    }
    bytes = scenario.replicator(0).checkpoint_bytes_sent();
    cuts = scenario.replicator(0).checkpoints_full_taken() +
           scenario.replicator(0).checkpoints_delta_taken();
    if (scenario.app(1).state_digest() != kv.state_digest()) {
      state.SkipWithError("backup diverged");
      break;
    }
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
  state.counters["checkpoints"] = static_cast<double>(cuts);
  state.counters["bytes_per_checkpoint"] =
      cuts == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(cuts);
}
BENCHMARK(BM_CheckpointStream)->Arg(1)->Arg(16)->ArgName("anchor_interval");

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
