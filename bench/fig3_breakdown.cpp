// Figure 3: break-down of the average round-trip time of a request
// transmitted through the replicator (one client, one server replica).
//
// Paper reference values: application 15 us, ORB 398 us, group communication
// 620 us, replicator 154 us (total 1187 us). The application / ORB /
// replicator shares are the calibrated per-traversal costs times their
// traversal counts; the group-communication share is the measured remainder
// (daemon processing + sequencing + wire time), exactly how the paper's
// instrumentation attributed it.
//
// Usage: fig3_breakdown [requests=10000] [seed=42]
#include <cstdio>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 1;
  config.replicas = 1;
  config.max_replicas = 1;
  config.style = replication::ReplicationStyle::kActive;

  harness::Scenario scenario(config);
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 10000));
  const harness::ExperimentResult result = scenario.run_closed_loop(cycle);

  const double app_us = to_usec(calib::kAppProcessing);
  const double orb_us = 4.0 * to_usec(calib::kOrbTraversal);
  const double replicator_us = 4.0 * to_usec(calib::kReplicatorTraversal);
  const double gc_us = result.avg_latency_us - app_us - orb_us - replicator_us;

  std::printf("Figure 3 — break-down of the average round-trip time\n");
  std::printf("(1 client, 1 server replica, %d-request cycle)\n\n",
              cycle.requests_per_client);
  std::printf("measured average round-trip: %.1f us (jitter %.1f us)\n\n",
              result.avg_latency_us, result.jitter_us);

  std::vector<harness::Bar> bars{
      {"Application", app_us, 0.0},
      {"ORB", orb_us, 0.0},
      {"Group Communication", gc_us, 0.0},
      {"Replicator", replicator_us, 0.0},
  };
  std::printf("%s\n", harness::render_bars("round-trip share per layer", "us", bars).c_str());

  harness::Table table({"layer", "this repo [us]", "paper [us]"});
  table.add_row({"Application", harness::Table::num(app_us), "15"});
  table.add_row({"ORB", harness::Table::num(orb_us), "398"});
  table.add_row({"Group Communication", harness::Table::num(gc_us), "620"});
  table.add_row({"Replicator", harness::Table::num(replicator_us), "154"});
  table.add_row({"Total", harness::Table::num(result.avg_latency_us), "1187"});
  std::printf("%s", table.render().c_str());
  return 0;
}
