// Macro events/sec benchmark of the simulation kernel (BENCH_kernel.json).
//
// The micro benches time single components; this one answers the question
// the ROADMAP actually asks — how many *simulated events per wall second*
// can the kernel push through a whole replicated scenario? Every layer is on
// the path: client ORBs, coordinators, daemons, the reliable link, ordered
// delivery, replicators and servant execution, all as callbacks on one
// sim::Kernel.
//
// `events_per_sec` (wall-clock rate of kernel events executed) is the
// headline number; scripts/ci.sh fails when it regresses more than 20%
// against the recorded BENCH_kernel.json baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sim/kernel.hpp"
#include "sim/parallel/windowed.hpp"

using namespace vdep;

namespace {

void run_macro_scenario(benchmark::State& state, replication::ReplicationStyle style) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    state.PauseTiming();  // scenario construction/destruction is not the kernel
    harness::ScenarioConfig config;
    config.seed = 42;
    config.clients = clients;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = style;
    auto scenario = std::make_unique<harness::Scenario>(config);
    state.ResumeTiming();

    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 300;
    cycle.warmup_requests = 30;
    auto result = scenario->run_closed_loop(cycle);
    events += scenario->kernel().events_executed();
    completed += result.completed;

    state.PauseTiming();
    scenario.reset();
    state.ResumeTiming();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(completed) / static_cast<double>(state.iterations()));
}

void BM_MacroActiveEventsPerSec(benchmark::State& state) {
  run_macro_scenario(state, replication::ReplicationStyle::kActive);
}
BENCHMARK(BM_MacroActiveEventsPerSec)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_MacroWarmPassiveEventsPerSec(benchmark::State& state) {
  run_macro_scenario(state, replication::ReplicationStyle::kWarmPassive);
}
BENCHMARK(BM_MacroWarmPassiveEventsPerSec)->Arg(8)->Unit(benchmark::kMillisecond);

// The raw kernel ceiling with no protocol on top: a self-rescheduling event
// storm (64 actors, each re-posting itself) — the schedule+pop+dispatch cost
// a scenario event pays before any protocol work happens.
void BM_MacroKernelChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Kernel kernel(7);
    struct Actor {
      sim::Kernel* kernel;
      SimTime period;
      std::uint64_t remaining;
      void fire() {
        if (remaining-- == 0) return;
        kernel->post(period, [this] { fire(); });
      }
    };
    std::vector<Actor> actors;
    constexpr int kActors = 64;
    constexpr std::uint64_t kRounds = 4000;
    actors.reserve(kActors);
    for (int i = 0; i < kActors; ++i) {
      actors.push_back(Actor{&kernel, usec(3 + i % 17), kRounds});
    }
    state.ResumeTiming();

    for (auto& a : actors) a.fire();
    kernel.run();
    events += kernel.events_executed();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MacroKernelChurn)->Unit(benchmark::kMillisecond);

// Tier B: the same churn storm on the lookahead-windowed parallel engine —
// 8 hosts of 8 actors each, purely host-local work (the embarrassingly
// parallel case windowing exists for). Arg = worker count; the workers==1
// row prices the windowing machinery itself against BM_MacroKernelChurn.
void BM_WindowedChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::parallel::WindowedEngine::Config config;
    config.workers = static_cast<int>(state.range(0));
    config.lookahead = usec(10);
    auto engine = std::make_unique<sim::parallel::WindowedEngine>(config);
    struct Actor {
      sim::parallel::WindowedEngine* engine;
      int host;
      SimTime period;
      std::uint64_t remaining;
      void fire() {
        if (remaining-- == 0) return;
        engine->post(host, period, [this] { fire(); });
      }
    };
    constexpr int kHosts = 8;
    constexpr int kActorsPerHost = 8;
    constexpr std::uint64_t kRounds = 4000;
    std::vector<Actor> actors;
    actors.reserve(kHosts * kActorsPerHost);
    for (int h = 0; h < kHosts; ++h) {
      engine->add_host("host" + std::to_string(h));
      for (int i = 0; i < kActorsPerHost; ++i) {
        actors.push_back(Actor{engine.get(), h, usec(3 + (h * kActorsPerHost + i) % 17),
                               kRounds});
      }
    }
    state.ResumeTiming();

    for (auto& a : actors) a.fire();
    engine->run_until(sec(120));
    events += engine->events_executed();

    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowedChurn)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

// Tier B, active-replication-shaped traffic: client hosts broadcast request
// waves to every replica host (delay >= lookahead = the network's minimum
// propagation delay) and each replica replies, then does local "execution"
// churn. Cross-host messaging exercises the outbox/merge path windowing adds.
void BM_WindowedActiveFanout(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::parallel::WindowedEngine::Config config;
    config.workers = static_cast<int>(state.range(0));
    config.lookahead = usec(50);  // min client<->replica propagation delay
    auto engine = std::make_unique<sim::parallel::WindowedEngine>(config);
    constexpr int kClients = 4;
    constexpr int kReplicas = 4;
    constexpr int kWaves = 600;
    std::vector<int> clients, replicas;
    for (int c = 0; c < kClients; ++c)
      clients.push_back(engine->add_host("client" + std::to_string(c)));
    for (int r = 0; r < kReplicas; ++r)
      replicas.push_back(engine->add_host("replica" + std::to_string(r)));

    struct Driver {
      sim::parallel::WindowedEngine* engine;
      std::vector<int>* replicas;
      int client;
      int waves_left;
      void wave() {
        if (waves_left-- == 0) return;
        for (int r : *replicas) {
          // Request: client -> replica; replica executes (3 local events)
          // and replies; the reply's arrival triggers the next wave pacing.
          engine->send(client, r, usec(50) + usec(static_cast<int>(r) % 7),
                       [this, r] {
                         for (int k = 0; k < 3; ++k) {
                           engine->post(r, usec(1 + k), [] {});
                         }
                         engine->send(r, client, usec(50), [] {});
                       });
        }
        engine->post(client, usec(200), [this] { wave(); });
      }
    };
    std::vector<Driver> drivers;
    drivers.reserve(kClients);
    for (int c : clients) drivers.push_back(Driver{engine.get(), &replicas, c, kWaves});
    state.ResumeTiming();

    for (auto& d : drivers) {
      // Stagger wave starts so clients do not phase-lock.
      engine->post(d.client, usec(10 * (d.client + 1)), [&d] { d.wave(); });
    }
    engine->run_until(sec(120));
    events += engine->events_executed();

    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowedActiveFanout)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
