// Macro events/sec benchmark of the simulation kernel (BENCH_kernel.json).
//
// The micro benches time single components; this one answers the question
// the ROADMAP actually asks — how many *simulated events per wall second*
// can the kernel push through a whole replicated scenario? Every layer is on
// the path: client ORBs, coordinators, daemons, the reliable link, ordered
// delivery, replicators and servant execution, all as callbacks on one
// sim::Kernel.
//
// `events_per_sec` (wall-clock rate of kernel events executed) is the
// headline number; scripts/ci.sh fails when it regresses more than 20%
// against the recorded BENCH_kernel.json baseline.
#include <benchmark/benchmark.h>

#include <memory>

#include "harness/scenario.hpp"
#include "sim/kernel.hpp"

using namespace vdep;

namespace {

void run_macro_scenario(benchmark::State& state, replication::ReplicationStyle style) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    state.PauseTiming();  // scenario construction/destruction is not the kernel
    harness::ScenarioConfig config;
    config.seed = 42;
    config.clients = clients;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = style;
    auto scenario = std::make_unique<harness::Scenario>(config);
    state.ResumeTiming();

    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 300;
    cycle.warmup_requests = 30;
    auto result = scenario->run_closed_loop(cycle);
    events += scenario->kernel().events_executed();
    completed += result.completed;

    state.PauseTiming();
    scenario.reset();
    state.ResumeTiming();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_events"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(completed) / static_cast<double>(state.iterations()));
}

void BM_MacroActiveEventsPerSec(benchmark::State& state) {
  run_macro_scenario(state, replication::ReplicationStyle::kActive);
}
BENCHMARK(BM_MacroActiveEventsPerSec)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_MacroWarmPassiveEventsPerSec(benchmark::State& state) {
  run_macro_scenario(state, replication::ReplicationStyle::kWarmPassive);
}
BENCHMARK(BM_MacroWarmPassiveEventsPerSec)->Arg(8)->Unit(benchmark::kMillisecond);

// The raw kernel ceiling with no protocol on top: a self-rescheduling event
// storm (64 actors, each re-posting itself) — the schedule+pop+dispatch cost
// a scenario event pays before any protocol work happens.
void BM_MacroKernelChurn(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Kernel kernel(7);
    struct Actor {
      sim::Kernel* kernel;
      SimTime period;
      std::uint64_t remaining;
      void fire() {
        if (remaining-- == 0) return;
        kernel->post(period, [this] { fire(); });
      }
    };
    std::vector<Actor> actors;
    constexpr int kActors = 64;
    constexpr std::uint64_t kRounds = 4000;
    actors.reserve(kActors);
    for (int i = 0; i < kActors; ++i) {
      actors.push_back(Actor{&kernel, usec(3 + i % 17), kRounds});
    }
    state.ResumeTiming();

    for (auto& a : actors) a.fire();
    kernel.run();
    events += kernel.events_executed();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MacroKernelChurn)->Unit(benchmark::kMillisecond);

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
