// Figure 8 + Table 2: the high-level "scalability" knob.
//
// Profiles the design space (the Fig. 7 grid), then applies the paper's
// 4-step policy-synthesis rule (Sec. 4.3):
//   1. average latency <= 7000 us,
//   2. bandwidth <= 3 MB/s,
//   3. maximize faults tolerated,
//   4. minimize Cost = p*L/7000 + (1-p)*B/3, p = 0.5.
// Prints the feasible set per client count (the region between Fig. 8's
// constraint planes), the chosen configuration path (the thick line), and
// Table 2 with the paper's row alongside.
//
// Usage: fig8_scalability_knob [requests=10000] [seed=42]
//        [max_latency_us=7000] [max_bandwidth=3.0] [p=0.5]
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "knobs/scalability.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

const char* paper_row(int clients) {
  switch (clients) {
    case 1: return "A (3)  1245.8 us  1.074 MB/s  2 faults  cost 0.268";
    case 2: return "A (3)  1457.2 us  2.032 MB/s  2 faults  cost 0.443";
    case 3: return "P (3)  4966.0 us  1.887 MB/s  2 faults  cost 0.669";
    case 4: return "P (3)  6141.1 us  2.315 MB/s  2 faults  cost 0.825";
    case 5: return "P (2)  6006.2 us  2.799 MB/s  1 fault   cost 0.895";
    default: return "-";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  harness::SweepConfig sweep;
  sweep.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  sweep.requests_per_client = static_cast<int>(cfg.get_int("requests", 10000));

  std::printf("Figure 8 / Table 2 — high-level knob: scalability\n");
  std::printf("profiling the design space (%d-request cycles)...\n\n",
              sweep.requests_per_client);
  const knobs::DesignSpaceMap map = harness::profile_design_space(sweep);

  knobs::ScalabilityRequirements requirements;
  requirements.max_latency_us = cfg.get_double("max_latency_us", 7000.0);
  requirements.max_bandwidth_mbps = cfg.get_double("max_bandwidth", 3.0);
  requirements.cost.p = cfg.get_double("p", 0.5);
  requirements.cost.latency_limit_us = requirements.max_latency_us;
  requirements.cost.bandwidth_limit_mbps = requirements.max_bandwidth_mbps;

  // The Fig. 8 region: which configurations survive the constraint planes.
  std::printf("feasible configurations per client count (latency <= %.0f us, "
              "bandwidth <= %.1f MB/s):\n",
              requirements.max_latency_us, requirements.max_bandwidth_mbps);
  for (int clients : map.client_counts()) {
    std::printf("  %d client%s: ", clients, clients == 1 ? " " : "s");
    bool any = false;
    for (const auto& p : map.at_clients(clients)) {
      const bool ok = p.latency_us <= requirements.max_latency_us &&
                      p.bandwidth_mbps <= requirements.max_bandwidth_mbps;
      if (ok) {
        std::printf("%s ", p.config.code().c_str());
        any = true;
      }
    }
    std::printf(any ? "\n" : "(none)\n");
  }
  std::printf("\n");

  const knobs::ScalabilityPolicy policy =
      knobs::synthesize_scalability_policy(map, requirements);

  harness::Table table({"Ncli", "Configuration", "Latency [us]", "Bandwidth [MB/s]",
                        "Faults Tolerated", "Cost", "paper (Table 2)"});
  for (const auto& e : policy.entries) {
    table.add_row({std::to_string(e.clients), e.config.code(),
                   harness::Table::num(e.latency_us),
                   harness::Table::num(e.bandwidth_mbps, 3),
                   std::to_string(e.faults_tolerated),
                   harness::Table::num(e.cost, 3), paper_row(e.clients)});
  }
  std::printf("Table 2 — policy for scalability tuning:\n%s", table.render().c_str());

  for (int clients : policy.infeasible_clients) {
    std::printf("\n%d clients: no configuration satisfies the requirements — the "
                "system notifies the operators that the tuning policy can no longer "
                "be honored.\n",
                clients);
  }
  if (!policy.entries.empty()) {
    std::printf("\nmax supported clients under this policy: %d\n",
                policy.max_supported_clients());
  }
  return 0;
}
