#!/usr/bin/env bash
# Builds the substrate micro-benchmarks in Release mode and records their
# results as BENCH_substrate.json at the repo root, then runs the seeded
# chaos campaign and records its summary as BENCH_chaos.json.
#
# Usage: bench/run_bench.sh [extra google-benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)" --target micro_substrate --target chaos_runner

"${build_dir}/bench/micro_substrate" \
  --benchmark_format=json \
  --benchmark_out="${repo_root}/BENCH_substrate.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${repo_root}/BENCH_substrate.json"

"${build_dir}/examples/chaos_runner" trials=200 seed=1 \
  out="${repo_root}/BENCH_chaos.json"
