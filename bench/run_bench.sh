#!/usr/bin/env bash
# Builds the micro-benchmarks in Release mode and records their results at
# the repo root: BENCH_substrate.json (substrate components), BENCH_obs.json
# (observability layer — span costs and the tracing-off/on scenario pair),
# BENCH_checkpoint.json (incremental checkpointing — delta vs. full bytes at
# swept dirty fractions, and the live checkpoint stream at anchor interval
# 1 vs. 16), then runs the seeded chaos campaign and records BENCH_chaos.json.
#
# Usage: bench/run_bench.sh [extra google-benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j"$(nproc)" \
  --target micro_substrate --target micro_obs --target micro_checkpoint \
  --target chaos_runner

"${build_dir}/bench/micro_substrate" \
  --benchmark_format=json \
  --benchmark_out="${repo_root}/BENCH_substrate.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${repo_root}/BENCH_substrate.json"

"${build_dir}/bench/micro_obs" \
  --benchmark_format=json \
  --benchmark_out="${repo_root}/BENCH_obs.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${repo_root}/BENCH_obs.json"

"${build_dir}/bench/micro_checkpoint" \
  --benchmark_format=json \
  --benchmark_out="${repo_root}/BENCH_checkpoint.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${repo_root}/BENCH_checkpoint.json"

"${build_dir}/examples/chaos_runner" trials=200 seed=1 \
  out="${repo_root}/BENCH_chaos.json"
