#!/usr/bin/env bash
# Builds the benchmarks in Release mode (-O2, NDEBUG) and records their
# results at the repo root: BENCH_substrate.json (substrate components),
# BENCH_obs.json (observability layer), BENCH_checkpoint.json (incremental
# checkpointing), BENCH_kernel.json (macro events/sec of the simulation
# kernel across whole scenarios), BENCH_shard.json (10k routed clients over
# a 32-shard fleet), then runs the seeded chaos campaign and records
# BENCH_chaos.json.
#
# Bench hygiene: baselines must never be recorded from a debug build. The
# bench binaries themselves refuse --benchmark_out when compiled without
# NDEBUG (see bench_main.cpp), and this script additionally verifies the
# "vdep_build_type" context stamped into every emitted JSON. (The stock
# "library_build_type" field describes the *system libbenchmark*, which
# Debian ships without NDEBUG — it reads "debug" even in a fully optimized
# build and is not the gate.)
#
# Usage: bench/run_bench.sh [extra google-benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "${build_dir}" -j"$(nproc)" \
  --target micro_substrate --target micro_obs --target micro_health \
  --target micro_checkpoint --target macro_events --target macro_shard \
  --target macro_campaign --target chaos_runner

# Records one google-benchmark binary into BENCH_<name>.json, refusing to
# keep the result unless the binary stamped itself as a release build.
record() {
  local binary="$1" out="$2"
  shift 2
  "${binary}" \
    --benchmark_format=json \
    --benchmark_out="${out}.tmp" \
    --benchmark_out_format=json \
    "$@"
  if ! grep -q '"vdep_build_type": "release"' "${out}.tmp"; then
    rm -f "${out}.tmp"
    echo "error: ${binary} did not stamp vdep_build_type=release; refusing to record ${out}" >&2
    exit 1
  fi
  mv "${out}.tmp" "${out}"
  echo "wrote ${out}"
}

# Merges the "benchmarks" arrays of several recorded JSONs into the first
# one's context (one baseline file for one layer, several producer binaries).
merge_into() {
  local out="$1"
  shift
  python3 - "${out}" "$@" <<'EOF'
import json, sys
out, first, *rest = sys.argv[1:]
doc = json.load(open(first))
for path in rest:
    doc["benchmarks"].extend(json.load(open(path))["benchmarks"])
json.dump(doc, open(out, "w"), indent=2)
print(f"wrote {out}")
EOF
}

record "${build_dir}/bench/micro_substrate" "${repo_root}/BENCH_substrate.json" "$@"
# The observability baseline holds both producers: tracer costs (micro_obs)
# and health-plane costs (micro_health). scripts/bench_gates.json gates each
# binary against it separately via the "current" field.
record "${build_dir}/bench/micro_obs" "${repo_root}/BENCH_obs_tracer.tmp.json" "$@"
record "${build_dir}/bench/micro_health" "${repo_root}/BENCH_obs_health.tmp.json" "$@"
merge_into "${repo_root}/BENCH_obs.json" \
  "${repo_root}/BENCH_obs_tracer.tmp.json" "${repo_root}/BENCH_obs_health.tmp.json"
rm -f "${repo_root}/BENCH_obs_tracer.tmp.json" "${repo_root}/BENCH_obs_health.tmp.json"
record "${build_dir}/bench/micro_checkpoint" "${repo_root}/BENCH_checkpoint.json" "$@"
record "${build_dir}/bench/macro_events" "${repo_root}/BENCH_kernel.json" "$@"
record "${build_dir}/bench/macro_shard" "${repo_root}/BENCH_shard.json" "$@"
record "${build_dir}/bench/macro_campaign" "${repo_root}/BENCH_parallel.json" "$@"

"${build_dir}/examples/chaos_runner" trials=200 seed=1 \
  out="${repo_root}/BENCH_chaos.json"
