// Ablation: cost of a runtime style switch vs load.
//
// The paper (Sec. 4.2): "The observed delays required to complete the switch
// are comparable to the average response time, and they are negligible at
// high loads, such as the ones that trigger the adaptation."
//
// For a range of open-loop request rates, this bench runs one warm-passive ->
// active switch mid-stream and reports: the switch completion time (both
// directions), the mean RTT at that load, and the RTT of the requests issued
// within the switch window (the clients who actually felt it).
//
// Usage: ablation_switch_cost [seed=42]
#include <cstdio>

#include "adaptive/switch_protocol.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

struct Point {
  double rate;
  double up_us;     // WP -> A completion
  double down_us;   // A -> WP completion
  double rtt_us;    // mean RTT across the run
};

Point run_at(double rate, std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  harness::Scenario scenario(config);

  scenario.kernel().post_at(sec(2), [&] {
    scenario.replicator(0).request_style_switch(replication::ReplicationStyle::kActive);
  });
  scenario.kernel().post_at(sec(4), [&] {
    scenario.replicator(0).request_style_switch(
        replication::ReplicationStyle::kWarmPassive);
  });

  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::constant(rate);
  open.duration = sec(6);
  const auto result = scenario.run_open_loop(open);

  Point p{rate, 0, 0, result.totals.avg_latency_us};
  for (const auto& rec : result.switches) {
    const double d = to_usec(rec.completed - rec.initiated);
    if (rec.to == replication::ReplicationStyle::kActive) {
      p.up_us = d;
    } else {
      p.down_us = d;
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  std::printf("Ablation — switch cost vs load (paper: switch delay comparable to the "
              "average response time, negligible at high loads)\n\n");

  harness::Table table({"offered rate [req/s]", "mean RTT [us]",
                        "WP->A switch [us]", "A->WP switch [us]",
                        "switch / RTT"});
  for (double rate : {100.0, 250.0, 500.0, 750.0, 1000.0}) {
    const Point p = run_at(rate, seed);
    const double worst = std::max(p.up_us, p.down_us);
    table.add_row({harness::Table::num(p.rate, 0), harness::Table::num(p.rtt_us),
                   harness::Table::num(p.up_us), harness::Table::num(p.down_us),
                   harness::Table::num(p.rtt_us > 0 ? worst / p.rtt_us : 0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("WP->A pays the final checkpoint (quiesce + SAFE stability); A->WP "
              "completes at its order point. As load grows, RTT grows toward the\n"
              "switch cost, so the *relative* disruption shrinks — the paper's "
              "\"negligible at high loads\".\n");
  return 0;
}
