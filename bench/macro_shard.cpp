// Macro throughput benchmark of the sharded scale-out path
// (BENCH_shard.json) — the Fig. 8 question asked of partitions instead of a
// knob: how far does one dependable service scale when its key space is
// split across many replica groups?
//
// The large configuration drives 10,000 simulated clients, each with its own
// ORB + coordinator + shard router, against 32 shards (one replica group
// each, plus the replicated directory). Every request takes the full
// production path: hash -> cached map -> coordinator -> AGREED multicast ->
// servant fence check -> KV apply. `requests_per_sec` (wall-clock rate of
// completed routed requests) and `events_per_sec` are the gated counters;
// scripts/ci.sh fails when either regresses more than the allowance in
// scripts/bench_gates.json.
#include <benchmark/benchmark.h>

#include <memory>

#include "shard/cluster.hpp"
#include "sim/kernel.hpp"

using namespace vdep;

namespace {

void BM_MacroShardFleet(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  const bool fleet_paced = state.range(2) != 0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  double sim_rps = 0.0;
  for (auto _ : state) {
    state.PauseTiming();  // fleet construction is not the routed hot path
    shard::ShardedClusterConfig config;
    config.seed = 42;
    config.shards = shards;
    config.clients = clients;
    config.client_hosts = 8;
    config.server_hosts = 16;
    config.default_policy.replicas = 2;
    auto cluster = std::make_unique<shard::ShardedCluster>(config);
    state.ResumeTiming();

    shard::ShardedCluster::WorkloadConfig wc;
    wc.ops_per_client = 5;
    wc.key_space = 4096;
    if (fleet_paced) {
      // Fleet mode: many low-rate clients instead of closed-loop saturation.
      // 10k clients hammering back-to-back would sit far past the AGREED
      // ordering capacity knee and measure retransmission collapse, not
      // scale-out; pacing keeps offered load under capacity so every op
      // completes and the counters track real routed work.
      wc.gap = sec(8);
      wc.stagger = msec(4);
    }
    const auto result = cluster->run_workload(wc);
    events += cluster->kernel().events_executed();
    completed += result.completed;
    sim_rps = result.throughput_rps;

    state.PauseTiming();
    cluster.reset();
    state.ResumeTiming();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(completed) / static_cast<double>(state.iterations()));
  state.counters["sim_throughput_rps"] = benchmark::Counter(sim_rps);
}

// Args: {shards, clients, fleet_paced}. The small closed-loop point keeps the
// series cheap to watch locally; the large fleet-paced one is the recorded
// scale-out baseline (10k clients, 32 shards, every op completing).
BENCHMARK(BM_MacroShardFleet)
    ->Args({8, 1000, 0})
    ->Args({32, 10000, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
