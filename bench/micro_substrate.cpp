// Micro-benchmarks of the substrate components (google-benchmark): event
// queue, RNG, byte/CDR/GIOP codecs, reply cache, vector clocks and the
// ordered-delivery buffer. These quantify the *real* (not simulated) cost of
// the infrastructure the experiments run on.
#include <benchmark/benchmark.h>

#include "gcs/message.hpp"
#include "gcs/ordering.hpp"
#include "gcs/vector_clock.hpp"
#include "orb/giop.hpp"
#include "replication/reply_cache.hpp"
#include "sim/event_queue.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

using namespace vdep;

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng(1);
  SimTime t = kTimeZero;
  int counter = 0;
  for (auto _ : state) {
    // Keep a working set of ~1000 events.
    for (int i = 0; i < 8; ++i) {
      queue.schedule(t + nsec(static_cast<std::int64_t>(rng.below(1'000'000))),
                     [&counter] { ++counter; });
    }
    while (queue.size() > 1000) {
      auto [at, fn] = queue.pop();
      t = at;
      fn();
    }
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_KernelRunSteps(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel(7);
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      kernel.post(usec(i), [&fired, &kernel, i] {
        ++fired;
        if (i % 2 == 0) kernel.post(usec(1), [&fired] { ++fired; });
      });
    }
    kernel.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_KernelRunSteps);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  std::uint64_t acc = 0;
  for (auto _ : state) acc ^= rng.next();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNext);

void BM_GiopRequestRoundTrip(benchmark::State& state) {
  orb::RequestMessage req;
  req.request_id = 77;
  req.object_key = ObjectId{1};
  req.operation = "process";
  req.body = filler_bytes(static_cast<std::size_t>(state.range(0)));
  orb::FtRequestContext ctx;
  ctx.client = ProcessId{5001};
  ctx.retention_id = 77;
  ctx.client_daemon = NodeId{0};
  req.service_contexts.push_back(ctx.to_context());
  for (auto _ : state) {
    Bytes wire = req.encode();
    auto decoded = orb::decode_giop(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_GiopRequestRoundTrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ReplyCachePutGet(benchmark::State& state) {
  replication::ReplyCache cache(1024);
  Payload reply = filler_bytes(128);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    RequestId id{ProcessId{1}, ++seq};
    cache.put(id, reply);
    benchmark::DoNotOptimize(cache.get(id));
  }
}
BENCHMARK(BM_ReplyCachePutGet);

void BM_VectorClockMerge(benchmark::State& state) {
  gcs::VectorClock a;
  gcs::VectorClock b;
  for (std::uint64_t i = 0; i < 16; ++i) {
    a.set(ProcessId{i}, i * 3);
    b.set(ProcessId{i}, i * 5 % 7);
  }
  for (auto _ : state) {
    gcs::VectorClock c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockMerge);

void BM_OrderedBufferOfferDeliver(benchmark::State& state) {
  // All message construction — including the 64-byte filler payload, which
  // used to charge allocation noise to the buffer under test — happens
  // outside the timed region; the loop measures offer + take_deliverable
  // only.
  gcs::View view;
  view.group = GroupId{1};
  view.view_id = 1;
  view.members.push_back(gcs::Member{ProcessId{1}, NodeId{0}});
  gcs::Ordered v;
  v.group = GroupId{1};
  v.epoch = 1;
  v.seq = 0;
  v.kind = gcs::Ordered::Kind::kView;
  v.payload = view.encode();
  std::vector<gcs::Ordered> round;
  const Payload body = Payload::copy_of(filler_bytes(64));
  for (std::uint64_t s = 1; s <= 256; ++s) {
    gcs::Ordered msg;
    msg.group = GroupId{1};
    msg.epoch = 1;
    msg.seq = s;
    msg.origin = gcs::OriginId{ProcessId{1}, s};
    msg.payload = body;
    round.push_back(msg);
  }

  for (auto _ : state) {
    state.PauseTiming();
    gcs::GroupReceiveBuffer buffer{GroupId{1}};
    state.ResumeTiming();

    (void)buffer.offer(v, NodeId{0});
    for (const gcs::Ordered& msg : round) (void)buffer.offer(msg, NodeId{0});
    auto out = buffer.take_deliverable();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OrderedBufferOfferDeliver);

// --- fan-out message path: encode-once vs per-destination ---------------------
//
// Models the daemon broadcast hot path end to end: encode the inner message,
// splice it into a link frame per destination, then decode on each receiver.
// The legacy shape (what the tree did before the shared-Payload refactor)
// re-encodes per destination and deep-copies payload bytes twice on every
// receive; the current shape encodes once, splices once per destination, and
// aliases on receive. The `payload_bytes_copied` counter is the acceptance
// metric: bytes memcpy'd per fan-out, excluding fixed headers.

constexpr int kFanoutDests = 4;

gcs::Ordered make_fanout_msg(std::size_t payload_size) {
  gcs::Ordered msg;
  msg.group = GroupId{1};
  msg.epoch = 3;
  msg.seq = 17;
  msg.origin = gcs::OriginId{ProcessId{1}, 17};
  msg.origin_daemon = NodeId{1};
  msg.payload = Payload::copy_of(filler_bytes(payload_size));
  return msg;
}

// ReliableLink's outer frame: type byte, sequence, length-prefixed inner.
Bytes splice_link_frame(std::span<const std::uint8_t> inner) {
  ByteWriter w(inner.size() + 16);
  w.u8(1);
  w.u64(42);
  w.bytes(inner);
  return std::move(w).take();
}

void BM_FanoutEncodePerDest(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const gcs::Ordered msg = make_fanout_msg(payload_size);
  std::size_t copied = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    for (int d = 0; d < kFanoutDests; ++d) {
      Payload frame = gcs::encode_inner(msg);       // re-encoded per destination
      copied += payload_size;
      Bytes link = splice_link_frame(frame);        // splice per destination
      copied += payload_size;
      ByteReader r(link);                           // receiver: no owner -> copies
      (void)r.u8();
      (void)r.u64();
      Payload inner = read_payload(r);              // deep copy out of the frame
      copied += payload_size;
      auto decoded = gcs::decode_inner(inner.view());  // deep copy of the payload
      copied += payload_size;
      benchmark::DoNotOptimize(decoded);
    }
    ++rounds;
  }
  state.counters["payload_bytes_copied"] =
      benchmark::Counter(static_cast<double>(copied) / static_cast<double>(rounds));
}
BENCHMARK(BM_FanoutEncodePerDest)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FanoutEncodeOnce(benchmark::State& state) {
  const auto payload_size = static_cast<std::size_t>(state.range(0));
  const gcs::Ordered msg = make_fanout_msg(payload_size);
  std::size_t copied = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    Payload frame = gcs::encode_inner(msg);         // encoded once, shared
    copied += payload_size;
    for (int d = 0; d < kFanoutDests; ++d) {
      Payload link = splice_link_frame(frame);      // one splice per destination
      copied += payload_size;
      ByteReader r(link.owner(), link);             // receiver: owner-aware
      (void)r.u8();
      (void)r.u64();
      Payload inner = read_payload(r);              // aliases the link frame
      auto decoded = gcs::decode_inner(inner);      // payload aliases too
      benchmark::DoNotOptimize(decoded);
    }
    ++rounds;
  }
  state.counters["payload_bytes_copied"] =
      benchmark::Counter(static_cast<double>(copied) / static_cast<double>(rounds));
}
BENCHMARK(BM_FanoutEncodeOnce)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Fnv1a(benchmark::State& state) {
  Bytes data = filler_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(fnv1a(data));
}
BENCHMARK(BM_Fnv1a)->Arg(64)->Arg(4096);

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
