// Shared main for the google-benchmark binaries.
//
// Bench hygiene: BENCH_*.json baselines are only meaningful from an
// optimized, assertion-free build. This main stamps the *library under
// test's* build type into the JSON context ("vdep_build_type") — the
// stock "library_build_type" field describes the system libbenchmark,
// which Debian ships without NDEBUG and therefore always reads "debug" —
// and refuses to write a --benchmark_out file at all when this binary was
// compiled with assertions enabled.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

namespace {

#ifdef NDEBUG
constexpr const char* kVdepBuildType = "release";
#else
constexpr const char* kVdepBuildType = "debug";
#endif

bool wants_recording(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) return true;
    if (std::strcmp(argv[i], "--benchmark_out") == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (std::strcmp(kVdepBuildType, "release") != 0 && wants_recording(argc, argv)) {
    std::fprintf(stderr,
                 "refusing to record a BENCH_*.json baseline from a debug build "
                 "(NDEBUG not set); configure with -DCMAKE_BUILD_TYPE=Release\n");
    return 1;
  }
  benchmark::AddCustomContext("vdep_build_type", kVdepBuildType);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
