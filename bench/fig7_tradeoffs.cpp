// Figure 7: the latency/bandwidth trade-off between active and warm-passive
// replication across {1..5 clients} x {1..3 replicas (0..2 faults
// tolerated)}.
//
// Expected shapes (paper): (a) warm passive is much slower than active and
// grows ~linearly with clients (~3x at 5 clients); (b) both styles' bandwidth
// grows with clients but active grows steeper (~2x passive at 5 clients,
// since every replica sends a reply and every request fans out k ways).
//
// Usage: fig7_tradeoffs [requests=10000] [seed=42] [csv=fig7.csv]
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  harness::SweepConfig sweep;
  sweep.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  sweep.requests_per_client = static_cast<int>(cfg.get_int("requests", 10000));

  std::printf("Figure 7 — trade-off between latency and bandwidth usage\n");
  std::printf("(cycle of %d requests per client per grid point)\n\n",
              sweep.requests_per_client);

  const knobs::DesignSpaceMap map =
      harness::profile_design_space(sweep, [](const knobs::DesignPoint& p) {
        std::fprintf(stderr, "  profiled %s clients=%d: %.1f us, %.3f MB/s\n",
                     p.config.code().c_str(), p.clients, p.latency_us,
                     p.bandwidth_mbps);
      });

  // (a) Round-trip latency.
  {
    harness::Table table({"config (faults tol.)", "1 client", "2", "3", "4", "5"});
    for (const auto& config : map.configurations()) {
      std::vector<std::string> row{config.code() + " (" +
                                   std::to_string(config.replicas - 1) + ")"};
      for (int clients : map.client_counts()) {
        auto p = map.find(config, clients);
        row.push_back(p ? harness::Table::num(p->latency_us) : "-");
      }
      table.add_row(std::move(row));
    }
    std::printf("(a) average round-trip latency [us]\n%s\n", table.render().c_str());
  }

  // (b) Bandwidth.
  {
    harness::Table table({"config (faults tol.)", "1 client", "2", "3", "4", "5"});
    for (const auto& config : map.configurations()) {
      std::vector<std::string> row{config.code() + " (" +
                                   std::to_string(config.replicas - 1) + ")"};
      for (int clients : map.client_counts()) {
        auto p = map.find(config, clients);
        row.push_back(p ? harness::Table::num(p->bandwidth_mbps, 3) : "-");
      }
      table.add_row(std::move(row));
    }
    std::printf("(b) bandwidth usage [MB/s]\n%s\n", table.render().c_str());
  }

  if (auto path = cfg.get("csv")) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& p : map.points()) {
      rows.push_back({replication::to_string(p.config.style),
                      std::to_string(p.config.replicas), std::to_string(p.clients),
                      harness::Table::num(p.latency_us, 1),
                      harness::Table::num(p.jitter_us, 1),
                      harness::Table::num(p.bandwidth_mbps, 4),
                      harness::Table::num(p.throughput_rps, 1),
                      std::to_string(p.faults_tolerated)});
    }
    if (harness::write_csv(*path, {"style", "replicas", "clients", "latency_us",
                                   "jitter_us", "bandwidth_mbps", "throughput_rps",
                                   "faults_tolerated"},
                           rows)) {
      std::printf("wrote %s\n", path->c_str());
    }
  }

  // Headline ratios the paper calls out.
  auto a3_5 = map.find({replication::ReplicationStyle::kActive, 3}, 5);
  auto p3_5 = map.find({replication::ReplicationStyle::kWarmPassive, 3}, 5);
  if (a3_5 && p3_5 && a3_5->latency_us > 0 && p3_5->bandwidth_mbps > 0) {
    std::printf("at 5 clients, 3 replicas: passive latency / active latency = %.2fx "
                "(paper: ~3x)\n",
                p3_5->latency_us / a3_5->latency_us);
    std::printf("at 5 clients, 3 replicas: active bandwidth / passive bandwidth = %.2fx "
                "(paper: ~2x)\n",
                a3_5->bandwidth_mbps / p3_5->bandwidth_mbps);
  }
  return 0;
}
