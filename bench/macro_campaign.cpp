// Trial-fleet throughput benchmark (BENCH_parallel.json).
//
// Measures chaos-campaign trials per wall second at 1, 4 and 8 workers —
// the headline number for the work-stealing fleet. Every trial is a full
// isolated Kernel (scenario + schedule + oracles), so this is an honest
// end-to-end parallel-efficiency measurement, not a task-overhead micro.
//
// On a single-core CI machine the 4/8-worker rows will not beat the serial
// row (they mostly pay the pool's coordination overhead); the regression
// gate in scripts/bench_gates.json therefore keys on the serial row's
// trials_per_sec, while the multi-worker rows document scaling on the
// machine that recorded the baseline.
#include <benchmark/benchmark.h>

#include "chaos/campaign.hpp"

using namespace vdep;

namespace {

void BM_CampaignTrials(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t trials = 0;
  std::uint64_t passed = 0;
  for (auto _ : state) {
    chaos::CampaignConfig config;
    config.seed = 42;
    config.trials = 40;
    config.base.clients = 2;
    config.base.ops_per_client = 60;
    config.workers = workers;
    const chaos::CampaignResult result = chaos::run_campaign(config);
    trials += static_cast<std::uint64_t>(result.trials);
    passed += static_cast<std::uint64_t>(result.passed);
  }
  state.counters["trials_per_sec"] =
      benchmark::Counter(static_cast<double>(trials), benchmark::Counter::kIsRate);
  state.counters["pass_rate"] =
      benchmark::Counter(static_cast<double>(passed) / static_cast<double>(trials));
}
// UseRealTime: the fleet's work happens on pool threads, so the default
// main-thread CPU clock would grossly inflate the multi-worker rows;
// trials_per_sec must mean wall-clock trials per second.
BENCHMARK(BM_CampaignTrials)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// main provided by bench_main.cpp (build-type stamping + debug refusal).
