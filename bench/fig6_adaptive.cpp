// Figure 6: the runtime-adaptive replication knob.
//
// An open-loop workload alternates between low and high request-rate
// plateaus over ~30 s. The adaptation policy (threshold on the agreed
// request rate with hysteresis) switches the group to active replication
// when the rate climbs and back to warm passive when it falls — the Fig. 5
// protocol runs live under load. A second run with static warm-passive
// replication and the identical workload reproduces the paper's comparison:
// "the request arrival rate observed at the server is 4.1% higher in the
// case of adaptive replication than when using static passive replication".
//
// Usage: fig6_adaptive [seed=42] [low=250] [high=1100] [plateau_ms=5000]
//        [csv=fig6.csv]
#include <cstdio>

#include "adaptive/switch_protocol.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

harness::OpenLoopResult run(bool adaptive, const Config& cfg) {
  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.enable_replicated_state = true;
  if (adaptive) {
    adaptive::RateThresholdPolicy::Config policy;
    policy.low_rate = cfg.get_double("low_threshold", 350);
    policy.high_rate = cfg.get_double("high_threshold", 600);
    config.adaptation = policy;
  }

  harness::Scenario scenario(config);
  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::fig6_burst(cfg.get_double("low", 250),
                                        cfg.get_double("high", 1100),
                                        msec(cfg.get_int("plateau_ms", 5000)),
                                        static_cast<int>(cfg.get_int("plateaus", 6)));
  open.duration = msec(cfg.get_int("plateau_ms", 5000)) *
                  cfg.get_int("plateaus", 6);
  return scenario.run_open_loop(open);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  std::printf("Figure 6 — low-level knob: adaptive replication\n\n");
  harness::OpenLoopResult adaptive_run = run(/*adaptive=*/true, cfg);
  harness::OpenLoopResult static_run = run(/*adaptive=*/false, cfg);

  const SimTime end = msec(cfg.get_int("plateau_ms", 5000)) * cfg.get_int("plateaus", 6);
  std::printf("%s\n",
              harness::render_series("request rate observed at the server [req/s]",
                                     adaptive_run.observed_rate, kTimeZero, end,
                                     msec(500), cfg.get_double("high", 1100) * 1.3)
                  .c_str());
  std::printf("%s\n",
              harness::render_series(
                  "replication style (bar full = active, empty = warm passive)",
                  adaptive_run.style_series, kTimeZero, end, msec(500), 1.0)
                  .c_str());

  if (auto path = cfg.get("csv")) {
    std::vector<std::vector<std::string>> rows;
    const auto rate = adaptive_run.observed_rate.resample(kTimeZero, end, msec(100));
    const auto style = adaptive_run.style_series.resample(kTimeZero, end, msec(100));
    for (std::size_t i = 0; i < rate.size() && i < style.size(); ++i) {
      rows.push_back({harness::Table::num(to_sec(rate[i].at), 3),
                      harness::Table::num(rate[i].value, 1),
                      harness::Table::num(style[i].value, 0)});
    }
    if (harness::write_csv(*path, {"time_s", "request_rate_rps", "style_is_active"},
                           rows)) {
      std::printf("wrote %s\n", path->c_str());
    }
  }

  const auto summary = adaptive::summarize_switches(adaptive_run.switches);
  std::printf("style switches: %zu (%zu to active, %zu to passive)\n", summary.count,
              summary.to_active, summary.to_passive);
  std::printf("switch completion time: mean %.0f us, max %.0f us "
              "(paper: comparable to the average response time)\n",
              summary.mean_duration_us, summary.max_duration_us);
  std::printf("mean round-trip during adaptive run: %.0f us\n\n",
              adaptive_run.totals.avg_latency_us);

  harness::Table table({"run", "completed requests", "served rate [req/s]",
                        "mean RTT [us]", "bandwidth [MB/s]"});
  table.add_row({"adaptive (passive <-> active)",
                 std::to_string(adaptive_run.totals.completed),
                 harness::Table::num(adaptive_run.totals.throughput_rps),
                 harness::Table::num(adaptive_run.totals.avg_latency_us),
                 harness::Table::num(adaptive_run.totals.bandwidth_mbps, 3)});
  table.add_row({"static warm passive",
                 std::to_string(static_run.totals.completed),
                 harness::Table::num(static_run.totals.throughput_rps),
                 harness::Table::num(static_run.totals.avg_latency_us),
                 harness::Table::num(static_run.totals.bandwidth_mbps, 3)});
  std::printf("%s", table.render().c_str());

  if (static_run.totals.completed > 0) {
    const double gain =
        100.0 * (static_cast<double>(adaptive_run.totals.completed) /
                     static_cast<double>(static_run.totals.completed) -
                 1.0);
    std::printf("\nserved request rate with adaptive replication: %+.1f%% vs static "
                "passive (paper: +4.1%%)\n",
                gain);
  }
  return 0;
}
